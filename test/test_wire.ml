module Wire = Ivdb_wire.Wire
module Row = Ivdb_relation.Row
module Value = Ivdb_relation.Value

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let frame_eq a b =
  (* Rows carries float cells: compare via the codec, which is exact
     (bit-pattern), so ordinary structural equality suffices *)
  a = b

let frame_testable =
  Alcotest.testable (fun ppf f -> Wire.pp ppf f) frame_eq

(* --- generators ---------------------------------------------------------- *)

let str_gen = QCheck.Gen.(string_size (int_bound 48))

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) small_signed_int;
        map (fun i -> Value.Float (float_of_int i /. 16.)) small_signed_int;
        map (fun s -> Value.Str s) str_gen;
        map (fun b -> Value.Bool b) bool;
        return Value.Null;
      ])

let row_gen =
  QCheck.Gen.(map Array.of_list (list_size (int_range 1 6) value_gen))

let error_code_gen =
  QCheck.Gen.oneofl
    [
      Wire.E_sql;
      Wire.E_parse;
      Wire.E_constraint;
      Wire.E_deadlock;
      Wire.E_draining;
      Wire.E_protocol;
      Wire.E_read_only;
      Wire.E_repl;
    ]

let frame_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun version client resume -> Wire.Hello { version; client; resume })
          (int_bound 255) str_gen
          (opt (int_bound 10000));
        map3
          (fun version server session ->
            Wire.Welcome { version; server; session })
          (int_bound 255) str_gen (int_bound 100000);
        map3
          (fun seq rid sql -> Wire.Exec { seq; rid; sql })
          (int_bound 100000) (int_bound 0xffffffff) str_gen;
        map (fun seq -> Wire.Metrics_req { seq }) (int_bound 100000);
        map3
          (fun seq header rows -> Wire.Rows { seq; header; rows })
          (int_bound 100000)
          (list_size (int_bound 5) str_gen)
          (list_size (int_bound 5) row_gen);
        map2 (fun seq n -> Wire.Affected { seq; n }) (int_bound 100000)
          small_nat;
        map2 (fun seq text -> Wire.Msg { seq; text }) (int_bound 100000)
          str_gen;
        map3
          (fun seq (code, text) txn_open ->
            Wire.Err { seq; code; text; txn_open })
          (int_bound 100000)
          (pair error_code_gen str_gen)
          bool;
        map (fun retry_ticks -> Wire.Busy { retry_ticks }) small_nat;
        map2
          (fun from replica -> Wire.ReplSubscribe { from; replica })
          (int_bound 100000) str_gen;
        map3
          (fun first n payload ->
            Wire.ReplRecords
              {
                first;
                upto = first + n;
                committed = first + (n / 2);
                flushed = first + n;
                payload;
              })
          (int_bound 100000) (int_bound 100) str_gen;
        map (fun upto -> Wire.ReplAck { upto }) (int_bound 100000);
        map (fun seq -> Wire.Promote { seq }) (int_bound 100000);
        map2
          (fun seq name -> Wire.DropSlot { seq; name })
          (int_bound 100000) str_gen;
        map3
          (fun (seq, rid) gtxn deltas -> Wire.Prepare { seq; rid; gtxn; deltas })
          (pair (int_bound 100000) (int_bound 100000))
          str_gen str_gen;
        map2
          (fun seq gtxn -> Wire.Prepared { seq; gtxn })
          (int_bound 100000) str_gen;
        map3
          (fun (seq, rid) gtxn committed -> Wire.Decide { seq; rid; gtxn; committed })
          (pair (int_bound 100000) (int_bound 100000))
          str_gen bool;
        map3
          (fun seq gtxn committed -> Wire.Decided { seq; gtxn; committed })
          (int_bound 100000) str_gen bool;
        return Wire.Bye;
      ])

let frame_arb =
  QCheck.make ~print:(fun f -> Format.asprintf "%a" Wire.pp f) frame_gen

(* --- deterministic round-trips ------------------------------------------- *)

let sample_frames =
  [
    Wire.Hello { version = Wire.version; client = "repl"; resume = None };
    Wire.Hello { version = Wire.version; client = ""; resume = Some 7 };
    Wire.Welcome { version = Wire.version; server = "ivdb"; session = 1 };
    Wire.Exec { seq = 3; rid = 65539; sql = "SELECT * FROM t WHERE s = 'a''b\x00c'" };
    Wire.Metrics_req { seq = 12 };
    Wire.Rows
      {
        seq = 4;
        header = [ "product"; "count"; "sum" ];
        rows =
          [
            [| Value.Int 1; Value.Int 2; Value.Float 3.5 |];
            [| Value.Null; Value.Str "x\xffy"; Value.Bool true |];
          ];
      };
    Wire.Rows { seq = 5; header = []; rows = [] };
    Wire.Affected { seq = 6; n = 0 };
    Wire.Msg { seq = 7; text = "ok" };
    Wire.Err
      { seq = 8; code = Wire.E_deadlock; text = "victim"; txn_open = false };
    Wire.Err { seq = 9; code = Wire.E_sql; text = ""; txn_open = true };
    Wire.Busy { retry_ticks = 100 };
    Wire.ReplSubscribe { from = 1; replica = "follower-1" };
    Wire.ReplRecords
      {
        first = 42;
        upto = 44;
        committed = 43;
        flushed = 99;
        payload = "\x00\x01framed\xff";
      };
    Wire.ReplAck { upto = 44 };
    Wire.Promote { seq = 10 };
    Wire.DropSlot { seq = 11; name = "follower-1" };
    Wire.Prepare { seq = 13; rid = 2; gtxn = "coord:7"; deltas = "\x00\x02bin\xff" };
    Wire.Prepare { seq = 14; rid = 0; gtxn = ""; deltas = "" };
    Wire.Prepared { seq = 15; gtxn = "coord:7" };
    Wire.Decide { seq = 16; rid = 2; gtxn = "coord:7"; committed = true };
    Wire.Decide { seq = 17; rid = 0; gtxn = "c:1"; committed = false };
    Wire.Decided { seq = 18; gtxn = "coord:7"; committed = true };
    Wire.Err { seq = 1; code = Wire.E_read_only; text = "replica"; txn_open = false };
    Wire.Err { seq = 2; code = Wire.E_repl; text = "truncated"; txn_open = false };
    Wire.Bye;
  ]

let test_samples_roundtrip () =
  List.iter
    (fun f ->
      check frame_testable (Wire.frame_name f) f (Wire.decode (Wire.encode f));
      match Wire.decode_framed (Wire.to_framed f) ~pos:0 with
      | Wire.Frame (f', next) ->
          check frame_testable ("framed " ^ Wire.frame_name f) f f';
          check Alcotest.int "next = length" (String.length (Wire.to_framed f))
            next
      | Wire.Partial | Wire.Corrupt _ ->
          Alcotest.failf "framed %s did not decode" (Wire.frame_name f))
    sample_frames

let test_trailing_bytes_rejected () =
  let payload = Wire.encode Wire.Bye ^ "x" in
  Alcotest.check_raises "trailing byte"
    (Invalid_argument "Wire.decode: malformed frame") (fun () ->
      ignore (Wire.decode payload))

let prop_roundtrip =
  QCheck.Test.make ~name:"wire frame encode/decode roundtrip" ~count:1000
    frame_arb (fun f -> frame_eq f (Wire.decode (Wire.encode f)))

let prop_framed_roundtrip =
  QCheck.Test.make ~name:"wire framed roundtrip at offset" ~count:500 frame_arb
    (fun f ->
      let framed = Wire.to_framed f in
      (* decode from a non-zero offset inside a larger buffer *)
      let buf = "junk" ^ framed ^ "tail" in
      match Wire.decode_framed buf ~pos:4 with
      | Wire.Frame (f', next) -> frame_eq f f' && next = 4 + String.length framed
      | Wire.Partial | Wire.Corrupt _ -> false)

(* --- truncation sweep ----------------------------------------------------- *)

(* Mirror of the WAL torn-tail sweep at byte granularity: concatenate a
   stream of framed frames, cut it at every byte offset, and decode
   sequentially. Exactly the frames that fit entirely before the cut come
   back; the cut point itself never yields a frame, garbage, or an
   exception. *)
let test_truncation_sweep () =
  let frames = sample_frames in
  let stream = String.concat "" (List.map Wire.to_framed frames) in
  let bounds =
    List.rev
      (snd
         (List.fold_left
            (fun (off, acc) f ->
              let e = off + String.length (Wire.to_framed f) in
              (e, e :: acc))
            (0, []) frames))
  in
  for cut = 0 to String.length stream do
    let prefix = String.sub stream 0 cut in
    let rec drain pos acc =
      match Wire.decode_framed prefix ~pos with
      | Wire.Frame (f, next) -> drain next (f :: acc)
      | Wire.Partial -> (List.rev acc, `Partial)
      | Wire.Corrupt m -> (List.rev acc, `Corrupt m)
    in
    let got, stop = drain 0 [] in
    (match stop with
    | `Partial -> ()
    | `Corrupt m -> Alcotest.failf "cut %d: corrupt (%s)" cut m);
    let expected =
      List.filteri (fun i _ -> List.nth bounds i <= cut) frames
    in
    check
      Alcotest.(list frame_testable)
      (Printf.sprintf "frames intact at cut %d" cut)
      expected got
  done

(* --- corruption ----------------------------------------------------------- *)

let test_checksum_detects_flip () =
  let framed = Wire.to_framed (Wire.Exec { seq = 1; rid = 65537; sql = "SELECT 1" }) in
  (* flip one bit in every payload byte position in turn *)
  for i = 8 to String.length framed - 1 do
    let b = Bytes.of_string framed in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    match Wire.decode_framed (Bytes.to_string b) ~pos:0 with
    | Wire.Corrupt _ -> ()
    | Wire.Frame _ -> Alcotest.failf "flip at %d decoded" i
    | Wire.Partial -> Alcotest.failf "flip at %d read as partial" i
  done

let test_absurd_length_is_corrupt () =
  let b = Buffer.create 8 in
  (* length prefix far beyond max_frame_bytes, then a plausible-looking
     header: must be corruption, not an allocation attempt *)
  Buffer.add_string b "\xff\xff\xff\xff";
  Buffer.add_string b "\x00\x00\x00\x00";
  match Wire.decode_framed (Buffer.contents b) ~pos:0 with
  | Wire.Corrupt _ -> ()
  | Wire.Frame _ | Wire.Partial ->
      Alcotest.fail "oversized length accepted"

let test_empty_and_tiny_are_partial () =
  for n = 0 to 7 do
    match Wire.decode_framed (String.make n '\x00') ~pos:0 with
    | Wire.Partial -> ()
    | Wire.Frame _ -> Alcotest.failf "tiny buffer %d decoded" n
    | Wire.Corrupt _ -> Alcotest.failf "tiny buffer %d corrupt" n
  done

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "sample roundtrips" `Quick test_samples_roundtrip;
          Alcotest.test_case "trailing bytes rejected" `Quick
            test_trailing_bytes_rejected;
          qtest prop_roundtrip;
          qtest prop_framed_roundtrip;
        ] );
      ( "framing",
        [
          Alcotest.test_case "truncation sweep" `Quick test_truncation_sweep;
          Alcotest.test_case "checksum detects bit flips" `Quick
            test_checksum_detects_flip;
          Alcotest.test_case "absurd length is corrupt" `Quick
            test_absurd_length_is_corrupt;
          Alcotest.test_case "tiny buffers are partial" `Quick
            test_empty_and_tiny_are_partial;
        ] );
    ]
