(* MVCC snapshot reads (D14).

   Property: a snapshot reader interleaved with committing and aborting
   escrow writers always sees a commit-consistent picture — the view rows
   it reads equal an aggregation over the base rows it reads (V1 at its
   begin stamp), and re-reading after yields returns the same answer —
   across seeds and commit modes. Plus: snapshot readers never touch the
   lock manager (metric-verified), and version chains drain once the last
   snapshot is released. *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Sched = Ivdb_sched.Sched
module Txn = Ivdb_txn.Txn
module Mvcc = Ivdb_txn.Mvcc
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain
module Metrics = Ivdb_util.Metrics
module Rng = Ivdb_util.Rng

exception Planned_abort

let make_db ?(commit_mode = Txn.Sync) () =
  let config =
    {
      Database.default_config with
      read_cost = 0;
      write_cost = 0;
      commit_mode;
    }
  in
  let db = Database.create ~config () in
  let sales =
    Database.create_table db ~name:"sales"
      ~cols:
        [
          { Schema.name = "id"; ty = Value.TInt; nullable = false };
          { Schema.name = "product"; ty = Value.TInt; nullable = false };
          { Schema.name = "qty"; ty = Value.TInt; nullable = false };
        ]
  in
  let schema = Database.schema db sales in
  let v =
    Database.create_view db ~name:"by_product" ~group_by:[ "product" ]
      ~aggs:[ View_def.Sum (Expr.col schema "qty") ]
      ~source:(Database.From (sales, None))
      ~strategy:Maintain.Escrow ()
  in
  (db, sales, v)

(* V1 at the snapshot: the view rows read under [tx] must equal a fresh
   aggregation over the base rows read under the same [tx]. *)
let snapshot_consistent db sales v tx =
  let expect = Hashtbl.create 16 in
  Seq.iter
    (fun row ->
      let p = Value.to_int row.(1) and q = Value.to_int row.(2) in
      let c, s =
        Option.value ~default:(0, 0) (Hashtbl.find_opt expect p)
      in
      Hashtbl.replace expect p (c + 1, s + q))
    (Query.table_scan db (Some tx) sales Query.Serializable);
  let actual = List.of_seq (Query.view_scan db (Some tx) v Query.Serializable) in
  List.length actual = Hashtbl.length expect
  && List.for_all
       (fun ((g : Ivdb_relation.Row.t), (stored : Ivdb_relation.Row.t)) ->
         match Hashtbl.find_opt expect (Value.to_int g.(0)) with
         | Some (c, s) ->
             Value.to_int stored.(0) = c && Value.to_int stored.(1) = s
         | None -> false)
       actual

let view_rows db v tx =
  List.of_seq (Query.view_scan db (Some tx) v Query.Serializable)

let run_mix ~seed ~commit_mode =
  let db, sales, v = make_db ~commit_mode () in
  (* preload so snapshots have history to defend *)
  Database.transact db (fun tx ->
      for i = 1 to 30 do
        ignore
          (Table.insert db tx sales
             [| Value.Int i; Value.Int (i mod 5); Value.Int (1 + (i mod 7)) |])
      done);
  let failures = ref [] in
  let fail_with msg = failures := msg :: !failures in
  let next_id = ref 1000 in
  Sched.run ~seed (fun () ->
      (* escrow writers: inserts and deletes, ~30% planned aborts *)
      for w = 1 to 4 do
        ignore
          (Sched.spawn (fun () ->
               let rng = Rng.create ((seed * 733) + w) in
               let my_rows = ref [] in
               for _ = 1 to 15 do
                 (try
                    Database.transact db (fun tx ->
                        for _ = 1 to 3 do
                          (if Rng.float rng < 0.25 && !my_rows <> [] then (
                             match !my_rows with
                             | rid :: rest ->
                                 my_rows := rest;
                                 (try Table.delete db tx sales rid
                                  with Not_found -> ())
                             | [] -> ())
                           else begin
                             incr next_id;
                             let rid =
                               Table.insert db tx sales
                                 [|
                                   Value.Int !next_id;
                                   Value.Int (Rng.int rng 5);
                                   Value.Int (1 + Rng.int rng 7);
                                 |]
                             in
                             my_rows := rid :: !my_rows
                           end);
                          Sched.yield ()
                        done;
                        if Rng.float rng < 0.3 then raise Planned_abort)
                  with
                 | Planned_abort -> ()
                 | Txn.Conflict _ -> ());
                 Sched.yield ()
               done))
      done;
      (* snapshot readers: consistency at begin, stability across yields *)
      for r = 1 to 3 do
        ignore
          (Sched.spawn (fun () ->
               for round = 1 to 8 do
                 Database.transact db ~read_only:true (fun tx ->
                     if not (snapshot_consistent db sales v tx) then
                       fail_with
                         (Printf.sprintf
                            "reader %d round %d: view != base at snapshot" r
                            round);
                     let first = view_rows db v tx in
                     Sched.yield ();
                     Sched.yield ();
                     if view_rows db v tx <> first then
                       fail_with
                         (Printf.sprintf
                            "reader %d round %d: snapshot read unstable" r
                            round);
                     Sched.yield ();
                     if not (snapshot_consistent db sales v tx) then
                       fail_with
                         (Printf.sprintf
                            "reader %d round %d: view != base after yields" r
                            round));
                 Sched.yield ()
               done))
      done);
  (db, v, List.rev !failures)

let test_snapshot_vs_escrow_writers () =
  let total_pruned = ref 0 in
  List.iter
    (fun (commit_mode, mode_name) ->
      for seed = 1 to 4 do
        let db, v, failures = run_mix ~seed ~commit_mode in
        total_pruned :=
          !total_pruned
          + Metrics.get (Database.metrics db) "mvcc.versions_pruned";
        Alcotest.(check (list string))
          (Printf.sprintf "commit-consistent snapshots (%s, seed %d)"
             mode_name seed)
          [] failures;
        (* engine-level invariant V1 still holds after the storm *)
        Alcotest.(check bool)
          (Printf.sprintf "V1 (%s, seed %d)" mode_name seed)
          true
          (Ivdb.Workload.check_consistency db v);
        (* every snapshot released: chains must be empty *)
        Alcotest.(check int)
          (Printf.sprintf "no live versions after run (%s, seed %d)"
             mode_name seed)
          0
          (Mvcc.live_versions (Txn.mvcc (Database.mgr db)))
      done)
    [
      (Txn.Sync, "sync");
      (Txn.Group { max_batch = 4; max_wait_ticks = 50 }, "group");
      (Txn.Async, "async");
    ];
  (* the storm must actually have exercised version chains: writers
     committed under live snapshots, so versions were installed and later
     pruned — a zero here would mean the property test went vacuous *)
  Alcotest.(check bool) "version chains were exercised" true (!total_pruned > 0)

(* Read-only transactions never touch the lock manager or the WAL. *)
let test_snapshot_takes_no_locks () =
  let db, sales, v = make_db () in
  let a_rid = ref None in
  Database.transact db (fun tx ->
      for i = 1 to 10 do
        let rid =
          Table.insert db tx sales
            [| Value.Int i; Value.Int (i mod 3); Value.Int i |]
        in
        if !a_rid = None then a_rid := Some rid
      done);
  let m = Database.metrics db in
  let locks_before = Metrics.get m "lock.acquire" in
  let wal_before = Metrics.get m "log.append" in
  Database.transact db ~read_only:true (fun tx ->
      ignore (Query.view_lookup db (Some tx) v [| Value.Int 1 |]);
      Seq.iter
        (fun _ -> ())
        (Query.table_scan db (Some tx) sales Query.Serializable);
      Seq.iter (fun _ -> ()) (Query.view_scan db (Some tx) v Query.Serializable);
      ignore (Table.get db (Some tx) sales (Option.get !a_rid)));
  Alcotest.(check int) "zero lock acquisitions" 0
    (Metrics.get m "lock.acquire" - locks_before);
  Alcotest.(check int) "zero WAL appends" 0
    (Metrics.get m "log.append" - wal_before);
  Alcotest.(check int) "snapshot counted" 1 (Metrics.get m "txn.snapshot_begin")

(* Writes are rejected loudly inside a read-only transaction. *)
let test_snapshot_rejects_writes () =
  let db, sales, _v = make_db () in
  let raised =
    try
      Database.transact db ~read_only:true (fun tx ->
          ignore
            (Table.insert db tx sales
               [| Value.Int 1; Value.Int 1; Value.Int 1 |]);
          false)
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "insert raises Invalid_argument" true raised

(* Versions are only retained while a snapshot can still read them, and the
   chains drain as soon as the last snapshot is released. *)
let test_version_gc () =
  let db, sales, _v = make_db () in
  let mvcc = Txn.mvcc (Database.mgr db) in
  let m = Database.metrics db in
  Database.transact db (fun tx ->
      for i = 1 to 5 do
        ignore
          (Table.insert db tx sales
             [| Value.Int i; Value.Int (i mod 2); Value.Int i |])
      done);
  (* no snapshot live: committed writes install nothing *)
  Alcotest.(check int) "no versions without readers" 0 (Mvcc.live_versions mvcc);
  let snap = Txn.begin_snapshot (Database.mgr db) in
  Database.transact db (fun tx ->
      for i = 10 to 14 do
        ignore
          (Table.insert db tx sales
             [| Value.Int i; Value.Int (i mod 2); Value.Int i |])
      done);
  let live_during = Mvcc.live_versions mvcc in
  Alcotest.(check bool) "versions retained for the open snapshot" true
    (live_during > 0);
  (* the snapshot still sees the pre-commit state *)
  let n = ref 0 in
  Seq.iter
    (fun _ -> incr n)
    (Query.table_scan db (Some snap) sales Query.Serializable);
  Alcotest.(check int) "snapshot sees 5 rows" 5 !n;
  Txn.commit (Database.mgr db) snap;
  Alcotest.(check int) "chains drained after release" 0
    (Mvcc.live_versions mvcc);
  Alcotest.(check bool) "prunes counted" true
    (Metrics.get m "mvcc.versions_pruned" >= live_during)

(* Regression for the install-time race documented at [Mvcc.install]: on
   a mixed escrow-then-exclusive key, commit delivers TWO entries at the
   same stamp — the escrow maintenance path pushes the pre-commit value
   ([push_committed]) and the transaction's recorded before-image is
   promoted by [commit_txn] — and either can arrive first. The first
   writer must win and the second must be dropped: exactly one entry
   joins the chain per key, and a snapshot reader resolves to the
   first-installed value in both arrival orders. Before the dedup, the
   chain head was duplicated and the reader's answer depended on which
   path ran last. *)
let test_mixed_install_race () =
  let mvcc = Mvcc.create (Metrics.create ()) in
  let snap = Mvcc.begin_snapshot mvcc in
  let committed = function
    | Mvcc.Committed v -> v
    | Mvcc.Pending _ -> Alcotest.fail "resolved to Pending"
    | Mvcc.Current -> Alcotest.fail "resolved to Current"
  in
  (* key "a": the escrow push lands first, the promoted before-image
     second (same stamp) *)
  Mvcc.record_write mvcc ~txn:7 ~obj:1 ~key:"a" ~before:(Some "before-a");
  let stamp_a = Mvcc.last_stamp mvcc + 1 in
  Mvcc.push_committed mvcc ~obj:1 ~key:"a" ~stamp:stamp_a (Some "escrow-a");
  Alcotest.(check int) "one entry after the escrow push" 1
    (Mvcc.live_versions mvcc);
  let s = Mvcc.commit_txn mvcc ~txn:7 in
  Alcotest.(check int) "commit stamps the racing pair equally" stamp_a s;
  Alcotest.(check int) "the promoted before-image was dropped" 1
    (Mvcc.live_versions mvcc);
  Alcotest.(check (option string)) "reader sees the first-installed value"
    (Some "escrow-a")
    (committed (Mvcc.resolve mvcc ~obj:1 ~key:"a" ~snap));
  (* key "b": reverse order — the before-image promotion lands first,
     the escrow push second *)
  Mvcc.record_write mvcc ~txn:8 ~obj:1 ~key:"b" ~before:(Some "before-b");
  let stamp_b = Mvcc.commit_txn mvcc ~txn:8 in
  Alcotest.(check int) "one entry after the promotion" 2
    (Mvcc.live_versions mvcc);
  Mvcc.push_committed mvcc ~obj:1 ~key:"b" ~stamp:stamp_b (Some "escrow-b");
  Alcotest.(check int) "the late escrow push was dropped" 2
    (Mvcc.live_versions mvcc);
  Alcotest.(check (option string)) "reader sees the first-installed value"
    (Some "before-b")
    (committed (Mvcc.resolve mvcc ~obj:1 ~key:"b" ~snap));
  (* distinct stamps never dedup: a later commit chains normally *)
  Mvcc.record_write mvcc ~txn:9 ~obj:1 ~key:"a" ~before:(Some "second-a");
  ignore (Mvcc.commit_txn mvcc ~txn:9);
  Alcotest.(check int) "a distinct stamp chains a new entry" 3
    (Mvcc.live_versions mvcc);
  Alcotest.(check (option string)) "the old snapshot still reads the oldest"
    (Some "escrow-a")
    (committed (Mvcc.resolve mvcc ~obj:1 ~key:"a" ~snap));
  Mvcc.release_snapshot mvcc snap;
  Alcotest.(check int) "chains drain with the snapshot" 0
    (Mvcc.live_versions mvcc)

let () =
  Alcotest.run "mvcc"
    [
      ( "snapshots",
        [
          Alcotest.test_case "snapshot readers vs escrow writers" `Quick
            test_snapshot_vs_escrow_writers;
          Alcotest.test_case "no locks, no WAL" `Quick
            test_snapshot_takes_no_locks;
          Alcotest.test_case "writes rejected" `Quick
            test_snapshot_rejects_writes;
          Alcotest.test_case "version chains drain" `Quick test_version_gc;
          Alcotest.test_case "mixed-key install race dedups at the head"
            `Quick test_mixed_install_race;
        ] );
    ]
