(* V3 as a property: whatever the interleaving, a crash at a stable-log
   point recovers to a state where every indexed view equals a from-scratch
   recomputation, and the engine keeps working afterwards. *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Workload = Ivdb.Workload
module Maintain = Ivdb_core.Maintain
module Txn = Ivdb_txn.Txn
module Wal = Ivdb_wal.Wal
module Value = Ivdb_relation.Value

let qtest = QCheck_alcotest.to_alcotest

let spec_of seed strategy =
  {
    Workload.default with
    seed;
    strategy;
    mpl = 4;
    txns_per_worker = 15;
    ops_per_txn = 3;
    delete_fraction = 0.25;
    n_groups = 8;
    theta = 0.8;
    initial_rows = 30;
  }

let strategies = [| Maintain.Exclusive; Maintain.Escrow; Maintain.Deferred |]

(* every property runs under every commit mode: batched (and async) forces
   must not change what recovery reconstructs *)
let modes =
  [| Txn.Sync; Txn.Group { max_batch = 8; max_wait_ticks = 30 }; Txn.Async |]

let with_mode spec mode =
  { spec with Workload.config = { spec.Workload.config with Database.commit_mode = mode } }

(* decorrelate from the [seed mod 3] strategy pick so every
   (strategy, commit mode) pair occurs *)
let mode_of seed = modes.((seed / 3) mod Array.length modes)

let consistent_after db v =
  (match Database.view_strategy db v with
  | Maintain.Deferred -> Database.transact db (fun tx -> ignore (Query.refresh db tx v))
  | Maintain.Exclusive | Maintain.Escrow -> ());
  Workload.check_consistency db v

(* crash with the full log forced (in-flight txns become losers) *)
let prop_crash_forced =
  QCheck.Test.make ~name:"crash with forced log: V1 after recovery" ~count:15
    QCheck.(int_bound 10000)
    (fun seed ->
      let strategy = strategies.(seed mod 3) in
      let spec = with_mode (spec_of seed strategy) (mode_of seed) in
      let db, sales, views = Workload.setup spec in
      let _ = Workload.run_on db sales views spec in
      (* leave losers in flight *)
      let mgr = Database.mgr db in
      (* distinct groups per loser: they run sequentially outside the
         scheduler, so they must not block on one another *)
      for k = 1 to 3 do
        let tx = Txn.begin_txn mgr in
        ignore
          (Table.insert db tx sales
             [| Value.Int (-900 - k); Value.Int (900 + k); Value.Int 5; Value.Float 1. |])
      done;
      Wal.force (Database.wal db) (Wal.last_lsn (Database.wal db));
      let db' = Database.crash db in
      let v' = Database.view db' "sales_by_product_0" in
      consistent_after db' v')

(* crash losing the unforced tail (only committed work survives) *)
let prop_crash_unforced_tail =
  QCheck.Test.make ~name:"crash losing unforced tail: V1 after recovery" ~count:15
    QCheck.(int_bound 10000)
    (fun seed ->
      let strategy = strategies.(seed mod 3) in
      let spec = with_mode (spec_of (seed + 77) strategy) (mode_of seed) in
      let db, sales, views = Workload.setup spec in
      let _ = Workload.run_on db sales views spec in
      (* unforced in-flight work simply evaporates *)
      let mgr = Database.mgr db in
      let tx = Txn.begin_txn mgr in
      ignore
        (Table.insert db tx sales
           [| Value.Int (-999); Value.Int 1; Value.Int 5; Value.Float 1. |]);
      let db' = Database.crash db in
      let v' = Database.view db' "sales_by_product_0" in
      consistent_after db' v')

(* double crash with work in between *)
let prop_crash_twice =
  QCheck.Test.make ~name:"crash, work, crash again: still consistent" ~count:10
    QCheck.(int_bound 10000)
    (fun seed ->
      let strategy = strategies.(seed mod 3) in
      let spec = with_mode (spec_of (seed + 313) strategy) (mode_of seed) in
      let db, sales, views = Workload.setup spec in
      let _ = Workload.run_on db sales views spec in
      let db' = Database.crash db in
      let sales' = Database.table db' "sales" in
      ignore (Database.gc db');
      Database.transact db' (fun tx ->
          for k = 1 to 5 do
            ignore
              (Table.insert db' tx sales'
                 [| Value.Int (1000 + k); Value.Int 2; Value.Int 1; Value.Float 2. |])
          done);
      let db'' = Database.crash db' in
      let v'' = Database.view db'' "sales_by_product_0" in
      consistent_after db'' v'')

(* acknowledged durability: in Sync and Group modes every transaction whose
   commit returned survives a crash — the batched force must cover a commit
   before it is acknowledged. (Async deliberately fails this; see
   prop_async_runs_consistent for its weaker contract.) *)
let prop_group_commit_durable =
  QCheck.Test.make ~name:"group commit: acked work survives a crash" ~count:15
    QCheck.(int_bound 10000)
    (fun seed ->
      let strategy = strategies.(seed mod 3) in
      let mode =
        if seed mod 2 = 0 then Txn.Sync
        else Txn.Group { max_batch = 1 + (seed mod 12); max_wait_ticks = seed mod 60 }
      in
      let spec = with_mode (spec_of (seed + 515) strategy) mode in
      let db, sales, _views = Workload.setup spec in
      let _ = Workload.run_on db sales _views spec in
      let dump d t =
        Query.table_scan d None t Query.Dirty |> List.of_seq |> List.sort compare
      in
      let before = dump db sales in
      let db' = Database.crash db in
      let after = dump db' (Database.table db' "sales") in
      before = after)

(* async mode may lose acked-but-unflushed tail transactions, but what
   recovery reconstructs is still transaction-consistent: base table and
   view agree *)
let prop_async_runs_consistent =
  QCheck.Test.make ~name:"async commit: crash state is still consistent" ~count:15
    QCheck.(int_bound 10000)
    (fun seed ->
      let strategy = strategies.(seed mod 3) in
      let spec = with_mode (spec_of (seed + 929) strategy) Txn.Async in
      let db, sales, views = Workload.setup spec in
      let _ = Workload.run_on db sales views spec in
      let db' = Database.crash db in
      let v' = Database.view db' "sales_by_product_0" in
      consistent_after db' v')

(* the scheduler's seeded RNG fully determines the interleaving, so batch
   boundaries — an emergent property of who reaches commit when — must be
   reproducible run over run *)
let prop_batch_boundaries_deterministic =
  QCheck.Test.make ~name:"same seed => same batch boundaries" ~count:10
    QCheck.(int_bound 10000)
    (fun seed ->
      let strategy = strategies.(seed mod 3) in
      let mode = Txn.Group { max_batch = 2 + (seed mod 10); max_wait_ticks = 20 } in
      let spec = with_mode (spec_of (seed + 1111) strategy) mode in
      let r1 = Workload.run spec in
      let r2 = Workload.run spec in
      r1.Workload.batch_hist = r2.Workload.batch_hist
      && r1.Workload.committed = r2.Workload.committed
      && r1.Workload.forces = r2.Workload.forces)

let () =
  Alcotest.run "crash-props"
    [
      ( "properties",
        [ qtest prop_crash_forced; qtest prop_crash_unforced_tail; qtest prop_crash_twice ]
      );
      ( "commit modes",
        [
          qtest prop_group_commit_durable;
          qtest prop_async_runs_consistent;
          qtest prop_batch_boundaries_deterministic;
        ] );
    ]
