module Sql = Ivdb_sql.Sql
module Parser = Ivdb_sql.Sql_parser
module Lexer = Ivdb_sql.Sql_lexer
module A = Ivdb_sql.Sql_ast
module Database = Ivdb.Database
module Value = Ivdb_relation.Value

let check = Alcotest.check

let config = { Database.default_config with read_cost = 0; write_cost = 0 }

let fresh () = Sql.session (Database.create ~config ())

let exec s sql = Sql.exec s sql

let rows_of s sql =
  match exec s sql with
  | Sql.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected rows"

let header_of s sql =
  match exec s sql with
  | Sql.Rows { header; _ } -> header
  | _ -> Alcotest.fail "expected rows"

let affected s sql =
  match exec s sql with
  | Sql.Affected n -> n
  | _ -> Alcotest.fail "expected affected count"

let ints row = Array.to_list (Array.map Value.to_int row)

(* --- lexer ------------------------------------------------------------------ *)

let test_lexer () =
  let toks = Lexer.tokenize "SELECT a, 'it''s' FROM t WHERE x <= 2.5 -- c" in
  check Alcotest.int "token count" 11 (List.length toks);
  Alcotest.(check bool) "string escape" true
    (List.exists (function Lexer.String "it's" -> true | _ -> false) toks);
  Alcotest.(check bool) "float" true
    (List.exists (function Lexer.Float 2.5 -> true | _ -> false) toks);
  Alcotest.check_raises "bad char" (Lexer.Lex_error "unexpected character '@'")
    (fun () -> ignore (Lexer.tokenize "a @ b"))

(* --- parser ------------------------------------------------------------------ *)

let test_parse_select () =
  match Parser.parse "SELECT a, b FROM t WHERE a = 1 AND b > 2 ORDER BY b DESC LIMIT 3" with
  | A.Select q ->
      check Alcotest.int "items" 2 (List.length q.A.items);
      Alcotest.(check bool) "where" true (q.A.where <> None);
      Alcotest.(check bool) "order desc" true
        (match q.A.order with Some o -> o.A.ob_desc | None -> false);
      check Alcotest.(option int) "limit" (Some 3) q.A.limit
  | _ -> Alcotest.fail "not a select"

let test_parse_precedence () =
  (* a = 1 OR b = 2 AND c = 3  ==  a=1 OR (b=2 AND c=3) *)
  match Parser.parse_expr "a = 1 OR b = 2 AND c = 3" with
  | A.Binop (A.Or, _, A.Binop (A.And, _, _)) -> ()
  | e -> Alcotest.failf "wrong precedence: %a" A.pp_expr e

let test_parse_arith_precedence () =
  match Parser.parse_expr "1 + 2 * 3" with
  | A.Binop (A.Add, A.Lit (A.L_int 1), A.Binop (A.Mul, _, _)) -> ()
  | e -> Alcotest.failf "wrong precedence: %a" A.pp_expr e

let test_parse_view () =
  match
    Parser.parse
      "CREATE VIEW v AS SELECT p, COUNT(*), SUM(q) FROM t GROUP BY p USING DEFERRED \
       REFRESH THRESHOLD 10"
  with
  | A.Create_view { strat = A.S_deferred (Some 10); query; _ } ->
      check Alcotest.(list string) "group by" [ "p" ] query.A.group_by
  | _ -> Alcotest.fail "bad view parse"

let test_parse_errors () =
  Alcotest.(check bool) "trailing" true
    (match Parser.parse "SELECT a FROM t t2" with
    | exception Parser.Parse_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "missing from" true
    (match Parser.parse "SELECT a" with
    | exception Parser.Parse_error _ -> true
    | _ -> false)

(* --- end to end ---------------------------------------------------------------- *)

let setup_sales () =
  let s = fresh () in
  ignore (exec s "CREATE TABLE sales (id INT NOT NULL, product TEXT NOT NULL, qty INT NOT NULL)");
  ignore
    (exec s
       "INSERT INTO sales VALUES (1, 'apple', 3), (2, 'pear', 2), (3, 'apple', 4), \
        (4, 'fig', 9)");
  s

let test_select_where_order_limit () =
  let s = setup_sales () in
  let rows = rows_of s "SELECT id, qty FROM sales WHERE qty >= 3 ORDER BY qty DESC LIMIT 2" in
  check Alcotest.(list (list int)) "rows" [ [ 4; 9 ]; [ 3; 4 ] ] (List.map ints rows)

let test_select_star_header () =
  let s = setup_sales () in
  check Alcotest.(list string) "header" [ "id"; "product"; "qty" ]
    (header_of s "SELECT * FROM sales")

let test_group_by_adhoc () =
  let s = setup_sales () in
  let rows = rows_of s "SELECT product, COUNT(*), SUM(qty) FROM sales GROUP BY product" in
  let by_product =
    List.map
      (fun r -> (Value.to_string r.(0), Value.to_int r.(1), Value.to_int r.(2)))
      rows
  in
  Alcotest.(check bool) "apple row" true (List.mem ("\"apple\"", 2, 7) by_product);
  Alcotest.(check bool) "fig row" true (List.mem ("\"fig\"", 1, 9) by_product)

let test_indexed_view_via_sql () =
  let s = setup_sales () in
  ignore
    (exec s
       "CREATE VIEW by_product AS SELECT product, COUNT(*), SUM(qty) FROM sales GROUP \
        BY product USING ESCROW");
  (* maintained incrementally *)
  ignore (exec s "INSERT INTO sales VALUES (5, 'pear', 10)");
  let rows = rows_of s "SELECT * FROM by_product WHERE product = 'pear'" in
  check Alcotest.int "one group" 1 (List.length rows);
  let r = List.hd rows in
  check Alcotest.int "count" 2 (Value.to_int r.(1));
  check Alcotest.int "sum" 12 (Value.to_int r.(2));
  (* the view equals the on-demand aggregation *)
  let view = rows_of s "SELECT * FROM by_product" in
  let adhoc = rows_of s "SELECT product, COUNT(*), SUM(qty) FROM sales GROUP BY product" in
  check Alcotest.int "same groups" (List.length adhoc) (List.length view)

let test_update_maintains_view () =
  let s = setup_sales () in
  ignore
    (exec s
       "CREATE VIEW v AS SELECT product, SUM(qty) FROM sales GROUP BY product USING \
        EXCLUSIVE");
  check Alcotest.int "updated" 2 (affected s "UPDATE sales SET qty = qty + 1 WHERE product = 'apple'");
  let rows = rows_of s "SELECT * FROM v WHERE product = 'apple'" in
  check Alcotest.int "sum" 9 (Value.to_int (List.hd rows).(2))

let test_delete_with_view () =
  let s = setup_sales () in
  ignore (exec s "CREATE VIEW v AS SELECT product, SUM(qty) FROM sales GROUP BY product USING ESCROW");
  check Alcotest.int "deleted" 2 (affected s "DELETE FROM sales WHERE product = 'apple'");
  let rows = rows_of s "SELECT * FROM v" in
  check Alcotest.int "apple gone" 2 (List.length rows)

let test_txn_control () =
  let s = setup_sales () in
  ignore (exec s "BEGIN");
  Alcotest.(check bool) "in txn" true (Sql.in_transaction s);
  ignore (exec s "INSERT INTO sales VALUES (9, 'kiwi', 1)");
  ignore (exec s "ROLLBACK");
  check Alcotest.int "rolled back" 0
    (List.length (rows_of s "SELECT id FROM sales WHERE product = 'kiwi'"));
  ignore (exec s "BEGIN");
  ignore (exec s "INSERT INTO sales VALUES (9, 'kiwi', 1)");
  ignore (exec s "COMMIT");
  check Alcotest.int "committed" 1
    (List.length (rows_of s "SELECT id FROM sales WHERE product = 'kiwi'"))

let test_deferred_view_sql () =
  let s = setup_sales () in
  ignore
    (exec s
       "CREATE VIEW v AS SELECT product, SUM(qty) FROM sales GROUP BY product USING \
        DEFERRED REFRESH THRESHOLD 0");
  ignore (exec s "INSERT INTO sales VALUES (10, 'plum', 5)");
  (* threshold 0: the first transactional reader refreshes *)
  ignore (exec s "BEGIN");
  let rows = rows_of s "SELECT * FROM v WHERE product = 'plum'" in
  ignore (exec s "COMMIT");
  check Alcotest.int "auto-refreshed" 1 (List.length rows)

let test_join_select () =
  let s = fresh () in
  ignore (exec s "CREATE TABLE o (oid INT NOT NULL, cust TEXT NOT NULL)");
  ignore (exec s "CREATE TABLE i (order_id INT NOT NULL, amt INT NOT NULL)");
  ignore (exec s "INSERT INTO o VALUES (1, 'ada'), (2, 'bob')");
  ignore (exec s "INSERT INTO i VALUES (1, 10), (1, 20), (2, 5)");
  let rows =
    rows_of s "SELECT cust, SUM(amt) FROM o JOIN i ON oid = order_id GROUP BY cust"
  in
  let find c =
    List.find_map
      (fun r -> if Value.to_string r.(0) = c then Some (Value.to_int r.(1)) else None)
      rows
  in
  check Alcotest.(option int) "ada" (Some 30) (find "\"ada\"");
  check Alcotest.(option int) "bob" (Some 5) (find "\"bob\"")

let test_sql_errors () =
  let s = setup_sales () in
  let expect_error sql =
    match exec s sql with
    | exception Sql.Sql_error _ -> ()
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected an error for %s" sql
  in
  expect_error "SELECT nope FROM sales";
  expect_error "SELECT * FROM nope";
  expect_error "INSERT INTO sales VALUES (1)";
  expect_error "INSERT INTO sales VALUES ('x', 'y', 'z')";
  expect_error "CREATE VIEW v AS SELECT product, MIN(qty) FROM sales GROUP BY product USING ESCROW";
  expect_error "COMMIT";
  (* errors inside a txn leave it open *)
  ignore (exec s "BEGIN");
  expect_error "SELECT nope FROM sales";
  Alcotest.(check bool) "txn still open" true (Sql.in_transaction s);
  ignore (exec s "ROLLBACK")

let test_show_and_metrics () =
  let s = setup_sales () in
  ignore (exec s "CREATE VIEW v AS SELECT product, SUM(qty) FROM sales GROUP BY product USING ESCROW");
  check Alcotest.int "tables" 1 (List.length (rows_of s "SHOW TABLES"));
  check Alcotest.int "views" 1 (List.length (rows_of s "SHOW VIEWS"));
  Alcotest.(check bool) "metrics nonempty" true (rows_of s "SHOW METRICS" <> []);
  match exec s "CHECKPOINT" with
  | Sql.Message _ -> ()
  | _ -> Alcotest.fail "checkpoint message"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_explain_analyze () =
  let s = setup_sales () in
  ignore (exec s "CREATE INDEX ix_product ON sales (product)");
  (match exec s "EXPLAIN ANALYZE SELECT * FROM sales WHERE product = 'apple' AND qty > 3" with
  | Sql.Message m ->
      Alcotest.(check bool) "plan first" true (String.sub m 0 11 = "index probe");
      Alcotest.(check bool) "probe rows" true (contains m "index probe rows: 2");
      Alcotest.(check bool) "residual rows" true
        (contains m "rows after residual filter: 1");
      Alcotest.(check bool) "rows returned" true (contains m "rows returned: 1");
      Alcotest.(check bool) "probe counter" true
        (contains m "index probes: 1 point, 0 range");
      Alcotest.(check bool) "lock waits" true (contains m "lock waits: 0");
      Alcotest.(check bool) "ticks" true (contains m "ticks: ")
  | _ -> Alcotest.fail "expected analyze text");
  (* grouped query: on-demand aggregation reports the group count *)
  (match exec s "EXPLAIN ANALYZE SELECT product, COUNT( * ) FROM sales GROUP BY product" with
  | Sql.Message m ->
      Alcotest.(check bool) "aggregation plan" true (contains m "on-demand aggregation");
      Alcotest.(check bool) "groups" true (contains m "groups aggregated: 3");
      Alcotest.(check bool) "group rows" true (contains m "rows returned: 3")
  | _ -> Alcotest.fail "expected analyze text");
  (* the same query answered from a matching view counts stored groups *)
  ignore
    (exec s
       "CREATE VIEW by_product AS SELECT product, COUNT( * ) FROM sales GROUP BY product USING ESCROW");
  match exec s "EXPLAIN ANALYZE SELECT product, COUNT( * ) FROM sales GROUP BY product" with
  | Sql.Message m ->
      Alcotest.(check bool) "view plan" true
        (contains m "answered from indexed view by_product");
      Alcotest.(check bool) "stored groups" true (contains m "stored groups read: 3")
  | _ -> Alcotest.fail "expected analyze text"

let test_explain_and_probe () =
  let s = setup_sales () in
  ignore (exec s "CREATE INDEX ix_product ON sales (product)");
  (match exec s "EXPLAIN SELECT * FROM sales WHERE product = 'apple' AND qty > 3" with
  | Sql.Message m ->
      Alcotest.(check bool) "probe plan" true
        (String.length m > 0
        && String.sub m 0 11 = "index probe"
        &&
        let has_residual =
          String.split_on_char '\n' m
          |> List.exists (fun l ->
                 List.exists
                   (fun w -> w = "residual")
                   (String.split_on_char ' ' l))
        in
        has_residual)
  | _ -> Alcotest.fail "expected plan text");
  (* the probe path returns the same rows as a scan *)
  let probe = rows_of s "SELECT id FROM sales WHERE product = 'apple' AND qty > 3" in
  check Alcotest.(list (list int)) "probe rows" [ [ 3 ] ] (List.map ints probe);
  Alcotest.(check bool) "probe metric" true
    (Ivdb_util.Metrics.get (Database.metrics (Sql.db s)) "sql.index_probe" >= 1);
  (match exec s "EXPLAIN SELECT * FROM sales WHERE qty > 3" with
  | Sql.Message m ->
      Alcotest.(check bool) "scan plan" true (String.sub m 0 8 = "seq scan")
  | _ -> Alcotest.fail "expected plan text")

let test_avg_and_having () =
  let s = setup_sales () in
  let rows =
    rows_of s
      "SELECT product, AVG(qty) FROM sales GROUP BY product HAVING COUNT(*) > 1"
  in
  (* only apple has 2 rows; avg qty = 3.5 *)
  check Alcotest.int "one group" 1 (List.length rows);
  let r = List.hd rows in
  check Alcotest.string "group" "\"apple\"" (Value.to_string r.(0));
  check (Alcotest.float 1e-9) "avg" 3.5 (Value.to_float r.(1));
  (* HAVING over an aggregate not in the select list *)
  let rows =
    rows_of s "SELECT product FROM sales GROUP BY product HAVING SUM(qty) >= 7"
  in
  check Alcotest.int "two groups" 2 (List.length rows);
  (* AVG in an indexed view is rejected with the SQL Server-style hint *)
  (match
     exec s "CREATE VIEW v AS SELECT product, AVG(qty) FROM sales GROUP BY product USING ESCROW"
   with
  | exception Sql.Sql_error m ->
      Alcotest.(check bool) "helpful error" true
        (String.length m > 0 && String.exists (fun c -> c = 'S') m)
  | _ -> Alcotest.fail "AVG view should be rejected")

let test_division () =
  let s = setup_sales () in
  let rows = rows_of s "SELECT id FROM sales WHERE qty * 2 > 17 ORDER BY id" in
  check Alcotest.(list (list int)) "filter with mul" [ [ 4 ] ] (List.map ints rows);
  (* division by zero yields NULL, which fails the predicate *)
  let rows = rows_of s "SELECT id FROM sales WHERE qty / 0 > 0" in
  check Alcotest.int "div by zero rows" 0 (List.length rows)

let test_sql_savepoints () =
  let s = setup_sales () in
  ignore (exec s "BEGIN");
  ignore (exec s "INSERT INTO sales VALUES (20, 'kiwi', 1)");
  ignore (exec s "SAVEPOINT leg1");
  ignore (exec s "INSERT INTO sales VALUES (21, 'kiwi', 2)");
  ignore (exec s "SAVEPOINT leg2");
  ignore (exec s "INSERT INTO sales VALUES (22, 'kiwi', 3)");
  ignore (exec s "ROLLBACK TO leg2");
  ignore (exec s "INSERT INTO sales VALUES (23, 'kiwi', 4)");
  ignore (exec s "ROLLBACK TO leg1");
  ignore (exec s "COMMIT");
  let rows = rows_of s "SELECT id FROM sales WHERE product = 'kiwi'" in
  check Alcotest.(list (list int)) "only pre-savepoint survives" [ [ 20 ] ]
    (List.map ints rows);
  (* savepoint without txn fails *)
  match exec s "SAVEPOINT nope" with
  | exception Sql.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected error"

let test_unique_index_sql () =
  let s = setup_sales () in
  ignore (exec s "CREATE UNIQUE INDEX pk ON sales (id)");
  (match exec s "INSERT INTO sales VALUES (1, 'dup', 1)" with
  | exception Sql.Sql_error _ -> Alcotest.fail "should be Constraint_violation"
  | exception Database.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "duplicate accepted");
  (* non-duplicates still insert *)
  ignore (exec s "INSERT INTO sales VALUES (99, 'ok', 1)");
  check Alcotest.int "row count" 5
    (List.length (rows_of s "SELECT id FROM sales"))

let test_view_matching () =
  let s = setup_sales () in
  ignore
    (exec s
       "CREATE VIEW by_product AS SELECT product, COUNT(*), SUM(qty) FROM sales         GROUP BY product USING ESCROW");
  let plan sql =
    match exec s ("EXPLAIN " ^ sql) with
    | Sql.Message m -> m
    | _ -> Alcotest.fail "plan"
  in
  let matched sql =
    String.length (plan sql) >= 8 && String.sub (plan sql) 0 8 = "answered"
  in
  (* exact match: answered from the view *)
  Alcotest.(check bool) "sum matches" true
    (matched "SELECT product, SUM(qty) FROM sales GROUP BY product");
  Alcotest.(check bool) "count(*) matches" true
    (matched "SELECT product, COUNT(*) FROM sales GROUP BY product");
  (* different grouping or underivable aggregate: fall back *)
  Alcotest.(check bool) "different group no match" false
    (matched "SELECT id, COUNT(*) FROM sales GROUP BY id");
  Alcotest.(check bool) "min no match" false
    (matched "SELECT product, MIN(qty) FROM sales GROUP BY product");
  (* results agree between the two paths *)
  let from_view = rows_of s "SELECT product, SUM(qty) FROM sales GROUP BY product" in
  let m0 = Ivdb_util.Metrics.get (Database.metrics (Sql.db s)) "sql.view_match" in
  Alcotest.(check bool) "match metric" true (m0 >= 1);
  let adhoc = rows_of s "SELECT product, MIN(qty), SUM(qty) FROM sales GROUP BY product" in
  List.iter2
    (fun v a ->
      check Alcotest.string "group agrees" (Value.to_string v.(0)) (Value.to_string a.(0));
      check Alcotest.int "sum agrees" (Value.to_int v.(1)) (Value.to_int a.(2)))
    from_view adhoc

let test_index_range_plan () =
  let s = setup_sales () in
  ignore (exec s "CREATE INDEX ix_qty ON sales (qty)");
  (match exec s "EXPLAIN SELECT id FROM sales WHERE qty > 2 AND qty <= 4" with
  | Sql.Message m ->
      Alcotest.(check bool) "range plan" true
        (String.length m >= 16 && String.sub m 0 16 = "index range scan")
  | _ -> Alcotest.fail "plan");
  let rows = rows_of s "SELECT id FROM sales WHERE qty > 2 AND qty <= 4 ORDER BY id" in
  check Alcotest.(list (list int)) "range rows" [ [ 1 ]; [ 3 ] ] (List.map ints rows);
  Alcotest.(check bool) "metric" true
    (Ivdb_util.Metrics.get (Database.metrics (Sql.db s)) "sql.index_range" >= 1)

let test_render () =
  let s = setup_sales () in
  let out = Sql.render (exec s "SELECT id FROM sales ORDER BY id LIMIT 2") in
  Alcotest.(check bool) "contains rows" true
    (String.length out > 0
    && String.split_on_char '\n' out |> List.exists (fun l -> String.trim l = "1"))

let test_order_by_index () =
  let s = setup_sales () in
  ignore (exec s "CREATE INDEX ix_qty ON sales (qty)");
  (match exec s "EXPLAIN SELECT qty FROM sales WHERE qty > 0 ORDER BY qty" with
  | Sql.Message m ->
      Alcotest.(check bool) "order satisfied by index" true
        (String.split_on_char '\n' m
        |> List.exists (fun l ->
               String.length l >= 8 && String.sub l 0 8 = "order by"))
  | _ -> Alcotest.fail "plan");
  let rows = rows_of s "SELECT qty FROM sales WHERE qty > 0 ORDER BY qty" in
  check Alcotest.(list (list int)) "index order" [ [ 2 ]; [ 3 ]; [ 4 ]; [ 9 ] ]
    (List.map ints rows)

let test_concurrent_sessions () =
  (* two SQL sessions on one database, interleaved by the scheduler:
     serializable isolation shows through the SQL surface *)
  let db = Database.create ~config () in
  let mk () = Sql.session db in
  let boot = mk () in
  ignore (exec boot "CREATE TABLE accts (id INT NOT NULL, bal INT NOT NULL)");
  ignore (exec boot "CREATE INDEX ix ON accts (id)");
  ignore (exec boot "INSERT INTO accts VALUES (1, 100), (2, 100)");
  let trace = ref [] in
  Ivdb_sched.Sched.run ~policy:Ivdb_sched.Sched.Fifo (fun () ->
      ignore
        (Ivdb_sched.Sched.spawn (fun () ->
             let s1 = mk () in
             ignore (exec s1 "BEGIN");
             ignore (exec s1 "UPDATE accts SET bal = bal - 10 WHERE id = 1");
             trace := `S1_updated :: !trace;
             Ivdb_sched.Sched.yield ();
             Ivdb_sched.Sched.yield ();
             ignore (exec s1 "COMMIT");
             trace := `S1_committed :: !trace));
      ignore
        (Ivdb_sched.Sched.spawn (fun () ->
             Ivdb_sched.Sched.yield ();
             let s2 = mk () in
             ignore (exec s2 "BEGIN");
             (* serializable read of the row s1 is updating: blocks *)
             let rows = rows_of s2 "SELECT bal FROM accts WHERE id = 1" in
             trace := `S2_read (Value.to_int (List.hd rows).(0)) :: !trace;
             ignore (exec s2 "COMMIT"))));
  (match List.rev !trace with
  | [ `S1_updated; `S1_committed; `S2_read v ] ->
      check Alcotest.int "reader saw committed value" 90 v
  | _ -> Alcotest.fail "unexpected interleaving")

let () =
  Alcotest.run "sql"
    [
      ("lexer", [ Alcotest.test_case "tokens" `Quick test_lexer ]);
      ( "parser",
        [
          Alcotest.test_case "select" `Quick test_parse_select;
          Alcotest.test_case "bool precedence" `Quick test_parse_precedence;
          Alcotest.test_case "arith precedence" `Quick test_parse_arith_precedence;
          Alcotest.test_case "create view" `Quick test_parse_view;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "execution",
        [
          Alcotest.test_case "select/where/order/limit" `Quick
            test_select_where_order_limit;
          Alcotest.test_case "select * header" `Quick test_select_star_header;
          Alcotest.test_case "ad-hoc group by" `Quick test_group_by_adhoc;
          Alcotest.test_case "indexed view" `Quick test_indexed_view_via_sql;
          Alcotest.test_case "update maintains view" `Quick test_update_maintains_view;
          Alcotest.test_case "delete with view" `Quick test_delete_with_view;
          Alcotest.test_case "txn control" `Quick test_txn_control;
          Alcotest.test_case "deferred view" `Quick test_deferred_view_sql;
          Alcotest.test_case "join aggregate" `Quick test_join_select;
          Alcotest.test_case "errors" `Quick test_sql_errors;
          Alcotest.test_case "show/metrics" `Quick test_show_and_metrics;
          Alcotest.test_case "explain + index probe" `Quick test_explain_and_probe;
          Alcotest.test_case "explain analyze" `Quick test_explain_analyze;
          Alcotest.test_case "avg + having" `Quick test_avg_and_having;
          Alcotest.test_case "division" `Quick test_division;
          Alcotest.test_case "savepoints" `Quick test_sql_savepoints;
          Alcotest.test_case "unique index" `Quick test_unique_index_sql;
          Alcotest.test_case "view matching" `Quick test_view_matching;
          Alcotest.test_case "index range plan" `Quick test_index_range_plan;
          Alcotest.test_case "concurrent sessions" `Quick test_concurrent_sessions;
          Alcotest.test_case "order by index" `Quick test_order_by_index;
          Alcotest.test_case "render" `Quick test_render;
        ] );
    ]
