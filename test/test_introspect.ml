(* Live introspection end to end: sys.* virtual tables resolved by the
   SQL layer (locally and over the wire), wait-queue visibility during an
   induced escrow conflict, correlation ids joining the slow-query log
   and the trace ring, and the Prometheus exposition of the metrics
   registry. *)

module Sched = Ivdb_sched.Sched
module Database = Ivdb.Database
module Workload = Ivdb.Workload
module Metrics = Ivdb_util.Metrics
module Trace = Ivdb_util.Trace
module Value = Ivdb_relation.Value
module Sql = Ivdb_sql.Sql
module Sys_tables = Ivdb_sql.Sys_tables
module Transport = Ivdb_transport.Transport
module Unix_transport = Ivdb_transport.Unix_transport
module Server = Ivdb_server.Server
module Metrics_http = Ivdb_server.Metrics_http
module Client = Ivdb_client.Client
module Net_workload = Ivdb_client.Net_workload

let check = Alcotest.check

let rows_of = function
  | Sql.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected Rows"

let header_of = function
  | Sql.Rows { header; _ } -> header
  | _ -> Alcotest.fail "expected Rows"

(* cell accessor by column name *)
let cell header name row =
  match List.find_index (fun h -> h = name) header with
  | Some i -> row.(i)
  | None -> Alcotest.failf "no column %s" name

let int_cell header name row =
  match cell header name row with
  | Value.Int i -> i
  | v -> Alcotest.failf "column %s not an int: %s" name (Value.to_string v)

let str_cell header name row =
  match cell header name row with
  | Value.Str s -> s
  | v -> Alcotest.failf "column %s not a string: %s" name (Value.to_string v)

let contains text sub =
  let n = String.length sub and l = String.length text in
  let rec go i = i + n <= l && (String.sub text i n = sub || go (i + 1)) in
  go 0

let setup_sales s =
  ignore
    (Sql.exec s
       "CREATE TABLE sales (id INT NOT NULL, product INT NOT NULL, qty INT \
        NOT NULL)");
  ignore
    (Sql.exec s
       "CREATE VIEW by_product AS SELECT product, COUNT(*), SUM(qty) FROM \
        sales GROUP BY product USING ESCROW");
  ignore (Sql.exec s "INSERT INTO sales VALUES (1, 1, 5), (2, 2, 7)")

(* --- local resolution ------------------------------------------------------ *)

let test_sys_basics () =
  let db = Database.create () in
  let s = Sql.session db in
  setup_sales s;
  (* sys.views: one view, right strategy, live group counts *)
  let r = Sql.exec s "SELECT * FROM sys.views" in
  let h = header_of r in
  (match rows_of r with
  | [ row ] ->
      check Alcotest.string "view name" "by_product" (str_cell h "view" row);
      check Alcotest.string "strategy" "escrow" (str_cell h "strategy" row);
      check Alcotest.int "groups" 2 (int_cell h "groups" row);
      check Alcotest.int "deltas" 2 (int_cell h "deltas" row)
  | l -> Alcotest.failf "expected 1 view row, got %d" (List.length l));
  (* sys.metrics: WHERE + projection by name *)
  let r =
    Sql.exec s "SELECT counter, value FROM sys.metrics WHERE counter = 'txn.commit'"
  in
  (match rows_of r with
  | [ row ] ->
      Alcotest.(check bool) "commits counted" true
        (int_cell (header_of r) "value" row > 0)
  | l -> Alcotest.failf "expected 1 metric row, got %d" (List.length l));
  (* ORDER BY + LIMIT over a sys table *)
  let r = Sql.exec s "SELECT counter FROM sys.metrics ORDER BY counter DESC LIMIT 3" in
  check Alcotest.int "limit applies" 3 (List.length (rows_of r));
  (* single-row providers *)
  check Alcotest.int "bufpool one row" 1
    (List.length (rows_of (Sql.exec s "SELECT * FROM sys.bufpool")));
  let r = Sql.exec s "SELECT * FROM sys.wal" in
  (match rows_of r with
  | [ row ] ->
      Alcotest.(check bool) "wal has records" true
        (int_cell (header_of r) "records" row > 0)
  | _ -> Alcotest.fail "expected 1 wal row");
  (* quiesced: no locks, no waits, no active transactions *)
  check Alcotest.int "no locks" 0
    (List.length (rows_of (Sql.exec s "SELECT * FROM sys.locks")));
  check Alcotest.int "no waits" 0
    (List.length (rows_of (Sql.exec s "SELECT * FROM sys.lock_waits")));
  check Alcotest.int "no active txns" 0
    (List.length
       (rows_of (Sql.exec s "SELECT * FROM sys.transactions WHERE state = 'active'")));
  (* a local session has no server: schema-only placeholders *)
  check Alcotest.int "no sessions locally" 0
    (List.length (rows_of (Sql.exec s "SELECT * FROM sys.server_sessions")));
  (* EXPLAIN names the access path without touching the engine *)
  (match Sql.exec s "EXPLAIN SELECT * FROM sys.lock_waits" with
  | Sql.Message m ->
      Alcotest.(check bool) "explain mentions snapshot" true
        (contains m "system table scan on sys.lock_waits")
  | _ -> Alcotest.fail "expected Message");
  (* unknown sys name lists the catalog *)
  (try
     ignore (Sql.exec s "SELECT * FROM sys.nope");
     Alcotest.fail "expected Sql_error"
   with Sql.Sql_error m ->
     Alcotest.(check bool) "error lists tables" true (contains m "sys.transactions"))

let test_sys_transactions_self () =
  let db = Database.create () in
  let s = Sql.session db in
  setup_sales s;
  ignore (Sql.exec s "BEGIN");
  ignore (Sql.exec s "INSERT INTO sales VALUES (3, 1, 2)");
  let r = Sql.exec s "SELECT * FROM sys.transactions WHERE state = 'active'" in
  let h = header_of r in
  (match rows_of r with
  | [ row ] ->
      check (Alcotest.testable Value.pp Value.equal) "self" (Value.Bool true)
        (cell h "self" row);
      Alcotest.(check bool) "deltas counted" true (int_cell h "deltas" row >= 1);
      Alcotest.(check bool) "locks held" true (int_cell h "locks" row > 0)
  | l -> Alcotest.failf "expected 1 active txn, got %d" (List.length l));
  ignore (Sql.exec s "COMMIT");
  (* the committed transaction moved to the recent ring *)
  let r = Sql.exec s "SELECT * FROM sys.transactions WHERE state = 'committed'" in
  Alcotest.(check bool) "recent committed visible" true (rows_of r <> [])

(* --- induced escrow conflict: E holder vs S waiter ------------------------- *)

let test_lock_waits_conflict () =
  let db = Database.create () in
  Sched.run ~seed:7 (fun () ->
      let writer = Sql.session db in
      let reader = Sql.session db in
      let monitor = Sql.session db in
      setup_sales writer;
      ignore (Sql.exec writer "BEGIN");
      ignore (Sql.exec writer "INSERT INTO sales VALUES (3, 1, 2)");
      (* exactly one active transaction right now: the writer *)
      let writer_txn =
        match
          rows_of
            (Sql.exec monitor
               "SELECT txn FROM sys.transactions WHERE state = 'active'")
        with
        | [ [| Value.Int t |] ] -> t
        | _ -> Alcotest.fail "expected one active txn"
      in
      let reader_done = ref false in
      ignore
        (Sched.spawn (fun () ->
             ignore (Sql.exec reader "BEGIN");
             (* serializable view read: S-class locks, blocks on the E *)
             ignore (Sql.exec reader "SELECT * FROM by_product");
             ignore (Sql.exec reader "COMMIT");
             reader_done := true));
      let rec poll n =
        if n = 0 then Alcotest.fail "reader never blocked";
        match rows_of (Sql.exec monitor "SELECT * FROM sys.lock_waits") with
        | [] ->
            Sched.yield ();
            poll (n - 1)
        | ws -> ws
      in
      let r = Sql.exec monitor "SELECT * FROM sys.lock_waits" in
      ignore r;
      let ws = poll 10000 in
      check Alcotest.int "exactly one wait row" 1 (List.length ws);
      let wh =
        header_of (Sql.exec monitor "SELECT * FROM sys.lock_waits")
      in
      let w = List.hd ws in
      check Alcotest.int "holder is the writer" writer_txn
        (int_cell wh "holder" w);
      let waiter = int_cell wh "waiter" w in
      Alcotest.(check bool) "waiter is someone else" true (waiter <> writer_txn);
      Alcotest.(check bool) "wait measured in ticks" true
        (int_cell wh "wait_ticks" w >= 0);
      (* sys.locks shows the writer holding E on the contested resource *)
      let resource = str_cell wh "resource" w in
      let lh = header_of (Sql.exec monitor "SELECT * FROM sys.locks") in
      let holder_modes =
        rows_of (Sql.exec monitor "SELECT * FROM sys.locks")
        |> List.filter (fun row ->
               str_cell lh "resource" row = resource
               && int_cell lh "txn" row = writer_txn)
        |> List.map (fun row -> str_cell lh "mode" row)
      in
      check Alcotest.(list string) "writer holds E" [ "E" ] holder_modes;
      (* the blocked reader appears as an active transaction too *)
      Alcotest.(check bool) "two active txns" true
        (List.length
           (rows_of
              (Sql.exec monitor
                 "SELECT * FROM sys.transactions WHERE state = 'active'"))
        = 2);
      ignore (Sql.exec writer "COMMIT");
      let rec drain n =
        if n = 0 then Alcotest.fail "reader never finished";
        if not !reader_done then begin
          Sched.yield ();
          drain (n - 1)
        end
      in
      drain 10000;
      check Alcotest.int "wait queue drained" 0
        (List.length (rows_of (Sql.exec monitor "SELECT * FROM sys.lock_waits"))))

(* --- quiesced snapshot after a workload ------------------------------------ *)

let test_quiesced_snapshot_consistent () =
  let spec =
    { Workload.default with seed = 5; mpl = 4; txns_per_worker = 10 }
  in
  let db2, sales2, views2 = Workload.setup spec in
  let _ = Workload.run_on db2 sales2 views2 spec in
  let s = Sql.session db2 in
  check Alcotest.int "no residual locks" 0
    (List.length (rows_of (Sql.exec s "SELECT * FROM sys.locks")));
  check Alcotest.int "no residual waits" 0
    (List.length (rows_of (Sql.exec s "SELECT * FROM sys.lock_waits")));
  check Alcotest.int "no active txns" 0
    (List.length
       (rows_of (Sql.exec s "SELECT * FROM sys.transactions WHERE state = 'active'")));
  (* per-view delta counters agree with the global metric *)
  let vh = header_of (Sql.exec s "SELECT * FROM sys.views") in
  let view_deltas =
    rows_of (Sql.exec s "SELECT * FROM sys.views")
    |> List.fold_left (fun acc row -> acc + int_cell vh "deltas" row) 0
  in
  check Alcotest.int "vstats deltas = view.delta metric"
    (Metrics.get (Database.metrics db2) "view.delta")
    view_deltas;
  (* sys.metrics mirrors the registry exactly *)
  let mh = header_of (Sql.exec s "SELECT * FROM sys.metrics") in
  let via_sql =
    rows_of (Sql.exec s "SELECT * FROM sys.metrics")
    |> List.map (fun row -> (str_cell mh "counter" row, int_cell mh "value" row))
  in
  check
    Alcotest.(list (pair string int))
    "sys.metrics = snapshot"
    (Metrics.snapshot (Database.metrics db2))
    via_sql;
  (* bufpool within capacity; wal lsns ordered *)
  let bh = header_of (Sql.exec s "SELECT * FROM sys.bufpool") in
  (match rows_of (Sql.exec s "SELECT * FROM sys.bufpool") with
  | [ row ] ->
      Alcotest.(check bool) "resident <= capacity" true
        (int_cell bh "resident" row <= int_cell bh "capacity" row)
  | _ -> Alcotest.fail "expected one bufpool row");
  let wh = header_of (Sql.exec s "SELECT * FROM sys.wal") in
  match rows_of (Sql.exec s "SELECT * FROM sys.wal") with
  | [ row ] ->
      Alcotest.(check bool) "flushed <= last" true
        (int_cell wh "flushed_lsn" row <= int_cell wh "last_lsn" row)
  | _ -> Alcotest.fail "expected one wal row"

(* --- determinism over loopback --------------------------------------------- *)

let test_sys_metrics_deterministic () =
  let spec =
    { Workload.default with seed = 21; mpl = 4; txns_per_worker = 8 }
  in
  let render_metrics () =
    let _r, db = Net_workload.run_net ~transport:Net_workload.Loopback spec in
    let s = Sql.session db in
    Sql.render (Sql.exec s "SELECT * FROM sys.metrics")
  in
  let a = render_metrics () in
  let b = render_metrics () in
  check Alcotest.string "same seed, same sys.metrics" a b

(* --- the acceptance path over live TCP ------------------------------------- *)

let test_tcp_lock_waits_and_correlation () =
  let db = Database.create () in
  let ring = Trace.Ring.create ~capacity:8192 in
  let tr = Database.trace db in
  Trace.add_sink tr (Trace.Ring.sink ring);
  Trace.set_enabled tr true;
  let reader_rid = ref 0 in
  Sched.run ~seed:13 (fun () ->
      let listener, port = Unix_transport.listen ~port:0 () in
      let config =
        { Server.default_config with slow_query_ticks = Some 1 }
      in
      let srv = Server.create ~config db listener in
      Server.serve srv;
      let dial = Unix_transport.dialer ~port () in
      let writer = Client.connect dial in
      ignore
        (Client.exec writer
           "CREATE TABLE sales (id INT NOT NULL, product INT NOT NULL, qty \
            INT NOT NULL)");
      ignore
        (Client.exec writer
           "CREATE VIEW by_product AS SELECT product, COUNT(*), SUM(qty) \
            FROM sales GROUP BY product USING ESCROW");
      ignore (Client.exec writer "INSERT INTO sales VALUES (1, 1, 5)");
      ignore (Client.exec writer "BEGIN");
      ignore (Client.exec writer "INSERT INTO sales VALUES (2, 1, 3)");
      let monitor = Client.connect dial in
      (* the writer is the only active transaction *)
      let writer_txn =
        match
          rows_of
            (Client.exec monitor
               "SELECT txn FROM sys.transactions WHERE state = 'active'")
        with
        | [ [| Value.Int t |] ] -> t
        | _ -> Alcotest.fail "expected one active txn"
      in
      let reader = Client.connect dial in
      ignore (Client.exec reader "BEGIN");
      let reader_done = ref false in
      ignore
        (Sched.spawn (fun () ->
             (* blocks server-side on the writer's escrow E lock *)
             ignore (Client.exec reader "SELECT * FROM by_product");
             reader_rid := Client.last_rid reader;
             ignore (Client.exec reader "COMMIT");
             Client.close reader;
             reader_done := true));
      let rec poll n =
        if n = 0 then Alcotest.fail "no lock wait over TCP";
        match
          rows_of (Client.exec monitor "SELECT * FROM sys.lock_waits")
        with
        | [] ->
            Sched.yield ();
            poll (n - 1)
        | ws -> ws
      in
      let ws = poll 10000 in
      let wh = header_of (Client.exec monitor "SELECT * FROM sys.lock_waits") in
      check Alcotest.int "one blocked waiter" 1 (List.length ws);
      let w = List.hd ws in
      check Alcotest.int "holder is the writer txn" writer_txn
        (int_cell wh "holder" w);
      Alcotest.(check bool) "waiter differs" true
        (int_cell wh "waiter" w <> writer_txn);
      (* sessions are visible over the wire, writer's in an open txn *)
      let sh =
        header_of (Client.exec monitor "SELECT * FROM sys.server_sessions")
      in
      let sess_rows =
        rows_of (Client.exec monitor "SELECT * FROM sys.server_sessions")
      in
      check Alcotest.int "three sessions" 3 (List.length sess_rows);
      let writer_sess =
        List.find
          (fun r -> int_cell sh "session" r = Client.session_id writer)
          sess_rows
      in
      check (Alcotest.testable Value.pp Value.equal) "writer in txn"
        (Value.Bool true)
        (cell sh "in_txn" writer_sess);
      (* release: the reader completes, slowly *)
      ignore (Client.exec writer "COMMIT");
      let rec drain n =
        if n = 0 then Alcotest.fail "reader never completed";
        if not !reader_done then begin
          Sched.yield ();
          drain (n - 1)
        end
      in
      drain 100000;
      (* the blocked SELECT shows up in the slow-query log under its rid *)
      let qh = header_of (Client.exec monitor "SELECT * FROM sys.slow_queries") in
      let slow =
        rows_of
          (Client.exec monitor
             (Printf.sprintf "SELECT * FROM sys.slow_queries WHERE rid = %d"
                !reader_rid))
      in
      check Alcotest.int "slow query recorded once" 1 (List.length slow);
      let sq = List.hd slow in
      Alcotest.(check bool) "it is the view select" true
        (contains (str_cell qh "sql" sq) "by_product");
      Alcotest.(check bool) "ticks over threshold" true
        (int_cell qh "ticks" sq >= 1);
      Client.close writer;
      Client.close monitor;
      Server.drain srv);
  Trace.set_enabled tr false;
  (* the same rid joins the trace: request, response, and slow-query *)
  let events = List.map (fun r -> r.Trace.event) (Trace.Ring.contents ring) in
  let has_req =
    List.exists
      (function
        | Trace.Net_request { rid; _ } -> rid = !reader_rid | _ -> false)
      events
  in
  let has_resp =
    List.exists
      (function
        | Trace.Net_response { rid; _ } -> rid = !reader_rid | _ -> false)
      events
  in
  let has_slow =
    List.exists
      (function
        | Trace.Slow_query { rid; sql; _ } ->
            rid = !reader_rid && contains sql "by_product"
        | _ -> false)
      events
  in
  Alcotest.(check bool) "rid in net.request" true has_req;
  Alcotest.(check bool) "rid in net.response" true has_resp;
  Alcotest.(check bool) "rid in net.slow_query" true has_slow

(* --- loopback smoke: every sys table + the exporter ------------------------ *)

let test_loopback_sys_smoke_and_scrape () =
  let db = Database.create () in
  Sched.run ~seed:17 (fun () ->
      let net = Transport.Loopback.create ~backlog:16 () in
      let srv = Server.create db (Transport.Loopback.listener net) in
      Server.serve srv;
      let cl = Client.connect (Transport.Loopback.dialer net) in
      ignore
        (Client.exec cl
           "CREATE TABLE sales (id INT NOT NULL, product INT NOT NULL, qty \
            INT NOT NULL)");
      ignore
        (Client.exec cl
           "CREATE VIEW by_product AS SELECT product, COUNT(*), SUM(qty) \
            FROM sales GROUP BY product USING ESCROW");
      ignore (Client.exec cl "INSERT INTO sales VALUES (1, 1, 5), (2, 2, 7)");
      (* every sys.* table answers over the wire *)
      List.iter
        (fun name ->
          match Client.exec cl (Printf.sprintf "SELECT * FROM %s" name) with
          | Sql.Rows { header; _ } ->
              Alcotest.(check bool)
                (name ^ " has a header") true (header <> [])
          | _ -> Alcotest.failf "%s did not return rows" name)
        Sys_tables.names;
      (* wire-level metrics fetch: families parse as exposition text *)
      let text = Client.metrics cl in
      Alcotest.(check bool) "counter family present" true
        (contains text "# TYPE ivdb_txn_commit counter");
      Alcotest.(check bool) "request hist present" true
        (contains text "ivdb_server_request_ticks_bucket{le=\"+Inf\"}");
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             if line <> "" && not (String.length line > 0 && line.[0] = '#')
             then
               match String.split_on_char ' ' line with
               | [ name; value ] ->
                   Alcotest.(check bool)
                     ("metric line " ^ line)
                     true
                     (name <> "" && int_of_string_opt value <> None)
               | _ -> Alcotest.failf "unparseable metric line %S" line);
      Client.close cl;
      Server.drain srv)

let test_metrics_http_endpoint () =
  let m = Metrics.create () in
  Metrics.add m "txn.commit" 5;
  Metrics.observe m "commit.batch" 2;
  let response = Buffer.create 256 in
  Sched.run ~seed:19 (fun () ->
      let net = Transport.Loopback.create () in
      let listener = Transport.Loopback.listener net in
      Metrics_http.serve m listener;
      let conn = Transport.Loopback.connect net in
      conn.Transport.write "GET /metrics HTTP/1.0\r\n\r\n";
      let buf = Bytes.create 1024 in
      let rec read_all () =
        let n = conn.Transport.read buf 0 (Bytes.length buf) in
        if n > 0 then begin
          Buffer.add_subbytes response buf 0 n;
          read_all ()
        end
      in
      read_all ();
      conn.Transport.close ();
      listener.Transport.stop ());
  let text = Buffer.contents response in
  Alcotest.(check bool) "status line" true (contains text "HTTP/1.0 200 OK");
  Alcotest.(check bool) "content type" true
    (contains text "Content-Type: text/plain");
  Alcotest.(check bool) "counter body" true (contains text "ivdb_txn_commit 5");
  Alcotest.(check bool) "hist body" true
    (contains text "ivdb_commit_batch_bucket{le=\"+Inf\"} 1");
  (* Content-Length matches the body after the blank line *)
  match String.index_opt text ':' with
  | None -> Alcotest.fail "no headers"
  | Some _ ->
      let marker = "\r\n\r\n" in
      let rec find i =
        if i + 4 > String.length text then Alcotest.fail "no header terminator"
        else if String.sub text i 4 = marker then i
        else find (i + 1)
      in
      let split = find 0 in
      let body = String.sub text (split + 4) (String.length text - split - 4) in
      let advertised =
        String.split_on_char '\n' (String.sub text 0 split)
        |> List.find_map (fun line ->
               let p = "Content-Length: " in
               let line = String.trim line in
               if String.length line > String.length p
                  && String.sub line 0 (String.length p) = p
               then
                 int_of_string_opt
                   (String.sub line (String.length p)
                      (String.length line - String.length p))
               else None)
      in
      check Alcotest.(option int) "content length" (Some (String.length body))
        advertised

let () =
  Alcotest.run "introspect"
    [
      ( "local",
        [
          Alcotest.test_case "sys basics" `Quick test_sys_basics;
          Alcotest.test_case "sys.transactions self" `Quick
            test_sys_transactions_self;
          Alcotest.test_case "escrow conflict in sys.lock_waits" `Quick
            test_lock_waits_conflict;
          Alcotest.test_case "quiesced snapshot consistent" `Quick
            test_quiesced_snapshot_consistent;
        ] );
      ( "network",
        [
          Alcotest.test_case "sys.metrics deterministic per seed" `Quick
            test_sys_metrics_deterministic;
          Alcotest.test_case "tcp lock waits + rid correlation" `Quick
            test_tcp_lock_waits_and_correlation;
          Alcotest.test_case "loopback sys smoke + scrape" `Quick
            test_loopback_sys_smoke_and_scrape;
          Alcotest.test_case "metrics http endpoint" `Quick
            test_metrics_http_endpoint;
        ] );
    ]
