module Page = Ivdb_storage.Page
module Page_diff = Ivdb_storage.Page_diff
module Disk = Ivdb_storage.Disk
module Bufpool = Ivdb_storage.Bufpool
module Heap_page = Ivdb_storage.Heap_page
module Heap_file = Ivdb_storage.Heap_file
module Metrics = Ivdb_util.Metrics
module Rng = Ivdb_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Page ----------------------------------------------------------------- *)

let test_page_header () =
  let p = Page.alloc () in
  check Alcotest.int "size" 8192 Page.size;
  Alcotest.(check bool) "starts free" true (Page.get_ty p = Page.Free);
  Page.set_ty p Page.Heap;
  Page.set_lsn p 123L;
  Alcotest.(check bool) "type" true (Page.get_ty p = Page.Heap);
  check Alcotest.int64 "lsn" 123L (Page.get_lsn p)

(* --- Page_diff ------------------------------------------------------------ *)

let test_diff_empty () =
  let a = Page.alloc () in
  let d = Page_diff.compute ~before:a ~after:(Bytes.copy a) in
  Alcotest.(check bool) "no diff" true (Page_diff.is_empty d)

let test_diff_ignores_lsn () =
  let a = Page.alloc () in
  let b = Bytes.copy a in
  Page.set_lsn b 999L;
  Alcotest.(check bool) "lsn excluded" true
    (Page_diff.is_empty (Page_diff.compute ~before:a ~after:b))

let prop_diff_apply =
  QCheck.Test.make ~name:"apply(compute(a,b)) recovers b" ~count:200
    QCheck.(pair int int)
    (fun (seed, nmut) ->
      let rng = Rng.create seed in
      let nmut = 1 + (abs nmut mod 50) in
      let a = Page.alloc () in
      (* random original content *)
      for _ = 0 to 200 do
        Bytes.set a (8 + Rng.int rng (Page.size - 8)) (Char.chr (Rng.int rng 256))
      done;
      let b = Bytes.copy a in
      for _ = 1 to nmut do
        Bytes.set b (8 + Rng.int rng (Page.size - 8)) (Char.chr (Rng.int rng 256))
      done;
      let d = Page_diff.compute ~before:a ~after:b in
      let d' = Page_diff.decode (Page_diff.encode d) in
      let restored = Bytes.copy a in
      Page_diff.apply restored d';
      Bytes.sub restored 8 (Page.size - 8) = Bytes.sub b 8 (Page.size - 8))

(* --- Disk ------------------------------------------------------------------ *)

let test_disk_rw () =
  let m = Metrics.create () in
  let d = Disk.create ~read_cost:0 ~write_cost:0 m in
  let id = Disk.alloc_page d in
  let p = Page.alloc () in
  Bytes.set p 100 'Z';
  Disk.write d id p;
  Bytes.set p 100 'Y';
  (* mutation after write must not leak into the stable copy *)
  let q = Disk.read d id in
  check Alcotest.char "stable copy" 'Z' (Bytes.get q 100);
  check Alcotest.int "reads counted" 1 (Metrics.get m "disk.read");
  check Alcotest.int "writes counted" 1 (Metrics.get m "disk.write")

let test_disk_unwritten_vs_bogus () =
  let m = Metrics.create () in
  let d = Disk.create ~read_cost:0 ~write_cost:0 m in
  (* allocated but never flushed: legitimate (e.g. crash beat the first
     write-back) — reads as zeroes, counted separately *)
  let id = Disk.alloc_page d in
  let q = Disk.read d id in
  Alcotest.(check bool) "zeroed" true (Bytes.for_all (fun c -> c = '\000') q);
  check Alcotest.int "unwritten counted" 1 (Metrics.get m "disk.read_unwritten");
  (* never-allocated id: a dangling reference — strict mode (the default)
     refuses to fabricate a page for it *)
  Alcotest.(check bool) "strict by default" true (Disk.strict d);
  Alcotest.check_raises "bogus id rejected"
    (Invalid_argument "Disk.read: page 999 was never allocated") (fun () ->
      ignore (Disk.read d 999));
  check Alcotest.int "bogus counted" 1 (Metrics.get m "disk.read_bogus");
  (* non-strict keeps the old fabricate-a-fresh-page behavior, still counted *)
  Disk.set_strict d false;
  let q = Disk.read d 999 in
  Alcotest.(check bool) "fabricated zeroed" true
    (Bytes.for_all (fun c -> c = '\000') q);
  check Alcotest.int "bogus counted again" 2 (Metrics.get m "disk.read_bogus")

let test_disk_checksum_roundtrip () =
  let m = Metrics.create () in
  let d = Disk.create ~read_cost:0 ~write_cost:0 m in
  let id = Disk.alloc_page d in
  let p = Page.alloc () in
  Page.set_lsn p 42L;
  Bytes.set p 4000 'Q';
  Disk.write d id p;
  Alcotest.(check bool) "stored image verifies" false (Disk.is_torn d id);
  let q = Disk.read d id in
  (* the checksum lives only on the stable image: the pool-facing copy
     reads back with the field zeroed and is byte-equal to what was
     written *)
  check Alcotest.int "checksum field zero" 0 (Page.get_checksum q);
  Alcotest.(check bool) "image equal" true (Bytes.equal p q)

(* --- Heap_page -------------------------------------------------------------- *)

let test_heap_page_insert_get_delete () =
  let p = Page.alloc () in
  Heap_page.init p;
  let s1 = Heap_page.insert p "hello" and s2 = Heap_page.insert p "world!" in
  check Alcotest.(option int) "slot 0" (Some 0) s1;
  check Alcotest.(option int) "slot 1" (Some 1) s2;
  check Alcotest.(option string) "get 0" (Some "hello") (Heap_page.get p 0);
  Alcotest.(check bool) "delete" true (Heap_page.delete p 0);
  check Alcotest.(option string) "ghosted" None (Heap_page.get p 0);
  check Alcotest.(option string) "ghost bytes retained" (Some "hello")
    (Heap_page.get_any p 0);
  Alcotest.(check bool) "double delete" false (Heap_page.delete p 0);
  (* a ghost slot is not reused... *)
  check Alcotest.(option int) "ghost slot skipped" (Some 2) (Heap_page.insert p "again");
  (* ...until revived or reclaimed *)
  Alcotest.(check bool) "revive" true (Heap_page.revive p 0);
  check Alcotest.(option string) "revived" (Some "hello") (Heap_page.get p 0);
  Alcotest.(check bool) "delete again" true (Heap_page.delete p 0);
  Alcotest.(check bool) "free ghost" true (Heap_page.free_ghost p 0);
  check Alcotest.(option int) "slot reused after reclaim" (Some 0)
    (Heap_page.insert p "reuse")

let test_heap_page_fill_and_compact () =
  let p = Page.alloc () in
  Heap_page.init p;
  let record = String.make 100 'x' in
  let inserted = ref 0 in
  (try
     while Heap_page.insert p record <> None do
       incr inserted
     done
   with _ -> ());
  Alcotest.(check bool) "fills ~78 records" true (!inserted >= 75 && !inserted <= 82);
  (* ghost-delete then reclaim every other record; a large record must then
     fit via compaction *)
  for i = 0 to (!inserted - 1) / 2 do
    ignore (Heap_page.delete p (2 * i));
    ignore (Heap_page.free_ghost p (2 * i))
  done;
  let big = String.make 2000 'y' in
  Alcotest.(check bool) "compaction reclaims" true (Heap_page.insert p big <> None)

let test_heap_page_set_in_place () =
  let p = Page.alloc () in
  Heap_page.init p;
  ignore (Heap_page.insert p "abcde");
  Alcotest.(check bool) "same-size set" true (Heap_page.set p 0 "vwxyz");
  check Alcotest.(option string) "updated" (Some "vwxyz") (Heap_page.get p 0);
  Alcotest.(check bool) "size-change rejected" false (Heap_page.set p 0 "toolong!")

let test_heap_page_too_large () =
  let p = Page.alloc () in
  Heap_page.init p;
  Alcotest.check_raises "oversize record"
    (Invalid_argument "Heap_page.insert: record too large") (fun () ->
      ignore (Heap_page.insert p (String.make 8300 'x')))

(* model-based: page behaves like an int->string table *)
let prop_heap_page_model =
  QCheck.Test.make ~name:"heap page vs model" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create seed in
      let p = Page.alloc () in
      Heap_page.init p;
      let model = Hashtbl.create 32 in
      for _ = 1 to 300 do
        match Rng.int rng 3 with
        | 0 ->
            let len = 1 + Rng.int rng 50 in
            let r = String.make len (Char.chr (97 + Rng.int rng 26)) in
            (match Heap_page.insert p r with
            | Some slot ->
                assert (not (Hashtbl.mem model slot));
                Hashtbl.replace model slot r
            | None -> ())
        | 1 ->
            let slots = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
            (match slots with
            | [] -> ()
            | _ ->
                let s = List.nth slots (Rng.int rng (List.length slots)) in
                assert (Heap_page.delete p s);
                assert (Heap_page.free_ghost p s);
                Hashtbl.remove model s)
        | _ ->
            let n = Heap_page.nslots p in
            if n > 0 then begin
              let s = Rng.int rng n in
              let expect = Hashtbl.find_opt model s in
              assert (Heap_page.get p s = expect)
            end
      done;
      Hashtbl.fold (fun s r ok -> ok && Heap_page.get p s = Some r) model true)

(* --- Bufpool ----------------------------------------------------------------- *)

let make_pool ?(capacity = 4) () =
  let m = Metrics.create () in
  let d = Disk.create ~read_cost:0 ~write_cost:0 m in
  let pool = Bufpool.create d ~capacity m in
  let forced = ref [] in
  Bufpool.set_wal_force pool (fun lsn -> forced := lsn :: !forced);
  (m, d, pool, forced)

let test_bufpool_hit_miss () =
  let m, d, pool, _ = make_pool () in
  let id = Disk.alloc_page d in
  Bufpool.read pool id (fun _ -> ());
  Bufpool.read pool id (fun _ -> ());
  check Alcotest.int "one miss" 1 (Metrics.get m "buffer.miss");
  check Alcotest.int "one hit" 1 (Metrics.get m "buffer.hit")

let test_bufpool_update_stamp_flush () =
  let _, d, pool, forced = make_pool () in
  let id = Disk.alloc_page d in
  let (), diff = Bufpool.update pool id (fun p -> Bytes.set p 100 'A') in
  Alcotest.(check bool) "diff captured" false (Page_diff.is_empty diff);
  Bufpool.stamp pool id 7L;
  Bufpool.flush_page pool id;
  Alcotest.(check bool) "wal forced before flush" true (List.mem 7L !forced);
  let stable = Disk.read d id in
  check Alcotest.char "flushed content" 'A' (Bytes.get stable 100);
  check Alcotest.int64 "flushed lsn" 7L (Page.get_lsn stable)

let test_bufpool_eviction_respects_capacity () =
  let m, d, pool, _ = make_pool ~capacity:3 () in
  let ids = List.init 6 (fun _ -> Disk.alloc_page d) in
  List.iter (fun id -> Bufpool.read pool id (fun _ -> ())) ids;
  Alcotest.(check bool) "evictions happened" true (Metrics.get m "buffer.evict" >= 3)

let test_bufpool_clock_second_chance () =
  let m, d, pool, _ = make_pool ~capacity:3 () in
  let a = Disk.alloc_page d
  and b = Disk.alloc_page d
  and c = Disk.alloc_page d in
  List.iter (fun id -> Bufpool.read pool id (fun _ -> ())) [ a; b; c ];
  (* the hand sweeps a full revolution clearing reference bits, then takes
     the oldest frame: a *)
  Bufpool.read pool (Disk.alloc_page d) (fun _ -> ());
  (* re-reference b: the next eviction must pass it over and take c *)
  Bufpool.read pool b (fun _ -> ());
  Bufpool.read pool (Disk.alloc_page d) (fun _ -> ());
  let hits = Metrics.get m "buffer.hit" in
  Bufpool.read pool b (fun _ -> ());
  check Alcotest.int "b survived both evictions" (hits + 1) (Metrics.get m "buffer.hit")

let test_bufpool_dirty_churn_consistent () =
  (* evictions write dirty frames back; after heavy churn every page reads
     back with its last update, whether served from a frame or from disk *)
  let _, d, pool, _ = make_pool ~capacity:4 () in
  let ids = Array.init 12 (fun _ -> Disk.alloc_page d) in
  Array.iteri
    (fun i id ->
      let (), _ = Bufpool.update pool id (fun p -> Bytes.set p 80 (Char.chr (65 + i))) in
      Bufpool.stamp pool id (Int64.of_int (i + 1)))
    ids;
  Array.iteri
    (fun i id ->
      Bufpool.read pool id (fun p ->
          check Alcotest.char "content survives churn" (Char.chr (65 + i))
            (Bytes.get p 80)))
    ids;
  Bufpool.flush_all pool;
  check Alcotest.(list (pair int int64)) "all clean" [] (Bufpool.dirty_page_table pool)

let test_bufpool_unstamped_not_evicted () =
  let _, d, pool, _ = make_pool ~capacity:2 () in
  let a = Disk.alloc_page d in
  let (), _ = Bufpool.update pool a (fun p -> Bytes.set p 50 'U') in
  (* a is modified but unstamped: loading more pages must not evict it *)
  for _ = 1 to 4 do
    Bufpool.read pool (Disk.alloc_page d) (fun _ -> ())
  done;
  Bufpool.read pool a (fun p -> check Alcotest.char "still buffered" 'U' (Bytes.get p 50));
  (* stable copy must not have the change *)
  let stable = Disk.read d a in
  check Alcotest.char "not flushed" '\000' (Bytes.get stable 50)

let test_bufpool_dpt () =
  let _, d, pool, _ = make_pool () in
  let a = Disk.alloc_page d and b = Disk.alloc_page d in
  let (), _ = Bufpool.update pool a (fun p -> Bytes.set p 60 'x') in
  Bufpool.stamp pool a 3L;
  let (), _ = Bufpool.update pool b (fun p -> Bytes.set p 60 'y') in
  Bufpool.stamp pool b 5L;
  let dpt = List.sort compare (Bufpool.dirty_page_table pool) in
  check Alcotest.(list (pair int int64)) "dpt" [ (a, 3L); (b, 5L) ] dpt;
  Bufpool.flush_all pool;
  check Alcotest.(list (pair int int64)) "clean" [] (Bufpool.dirty_page_table pool)

let test_bufpool_drop_all () =
  let _, d, pool, _ = make_pool () in
  let a = Disk.alloc_page d in
  let (), _ = Bufpool.update pool a (fun p -> Bytes.set p 60 'x') in
  Bufpool.stamp pool a 3L;
  Bufpool.drop_all pool;
  (* change was volatile-only: gone after the crash *)
  Bufpool.read pool a (fun p -> check Alcotest.char "lost" '\000' (Bytes.get p 60))

exception Boom

let test_bufpool_update_raise_restores () =
  (* regression: a mutation callback that dies mid-update used to leave its
     half-written bytes in a frame that looked clean (dirty = false, no
     no-steal window) — evictable to disk with no covering log record *)
  let _, d, pool, _ = make_pool ~capacity:2 () in
  let a = Disk.alloc_page d in
  let (), _ = Bufpool.update pool a (fun p -> Bytes.set p 200 'G') in
  Bufpool.stamp pool a 1L;
  (try
     ignore
       (Bufpool.update pool a (fun p ->
            Bytes.set p 200 'X';
            Bytes.set p 300 'X';
            raise Boom))
   with Boom -> ());
  Bufpool.read pool a (fun p ->
      check Alcotest.char "mutation rolled back" 'G' (Bytes.get p 200);
      check Alcotest.char "second byte rolled back" '\000' (Bytes.get p 300));
  (* the frame is clean: evicting it must not write the poisoned bytes *)
  for _ = 1 to 4 do
    Bufpool.read pool (Disk.alloc_page d) (fun _ -> ())
  done;
  let stable = Disk.read d a in
  check Alcotest.char "stable image intact" 'G' (Bytes.get stable 200)

let test_bufpool_capacity_zero () =
  (* regression: an empty clock ring must not divide by zero; a capacity-0
     pool degenerates to overflow-on-every-miss but stays functional *)
  let m, d, pool, _ = make_pool ~capacity:0 () in
  let a = Disk.alloc_page d and b = Disk.alloc_page d in
  let (), _ = Bufpool.update pool a (fun p -> Bytes.set p 90 'z') in
  Bufpool.stamp pool a 1L;
  Bufpool.read pool b (fun _ -> ());
  Bufpool.read pool a (fun p -> check Alcotest.char "still readable" 'z' (Bytes.get p 90));
  Alcotest.(check bool) "overflowed" true (Metrics.get m "buffer.overflow" > 0)

let test_bufpool_io_retry () =
  let m = Metrics.create () in
  let d = Disk.create ~read_cost:0 ~write_cost:0 m in
  (* every I/O fails, but never more than 2 in a row — below the pool's
     retry budget, so operations always converge *)
  let plan =
    Ivdb_storage.Fault.create m
      {
        Ivdb_storage.Fault.no_faults with
        fault_seed = 5;
        read_error_p = 1.0;
        write_error_p = 1.0;
        max_consecutive_errors = 2;
      }
  in
  Disk.set_fault d plan;
  let pool = Bufpool.create d ~capacity:2 m in
  Bufpool.set_wal_force pool (fun _ -> ());
  let a = Disk.alloc_page d in
  let (), _ = Bufpool.update pool a (fun p -> Bytes.set p 70 'R') in
  Bufpool.stamp pool a 1L;
  Bufpool.flush_page pool a;
  Bufpool.drop_all pool;
  Bufpool.read pool a (fun p ->
      check Alcotest.char "survived the error storm" 'R' (Bytes.get p 70));
  Alcotest.(check bool) "retries happened" true (Metrics.get m "buffer.io_retry" > 0);
  Alcotest.(check bool) "errors injected" true
    (Metrics.get m "fault.io_error_read" > 0
    && Metrics.get m "fault.io_error_write" > 0)

(* --- Heap_file ----------------------------------------------------------------- *)

let make_heap () =
  let m = Metrics.create () in
  let d = Disk.create ~read_cost:0 ~write_cost:0 m in
  let pool = Bufpool.create d ~capacity:16 m in
  Bufpool.set_wal_force pool (fun _ -> ());
  let heap, diffs = Heap_file.create pool d in
  (* tests drive the heap without a log: stamp pages directly *)
  let stamp = List.iter (fun (pid, _) -> Bufpool.stamp pool pid 1L) in
  stamp diffs;
  (d, pool, heap, stamp)

let test_heap_file_crud () =
  let _, _, heap, stamp = make_heap () in
  let r1, d1 = Heap_file.insert heap "alpha" in
  stamp d1;
  let r2, d2 = Heap_file.insert heap "beta!" in
  stamp d2;
  check Alcotest.(option string) "get r1" (Some "alpha") (Heap_file.get heap r1);
  stamp (Heap_file.update heap r2 "BETA!");
  Alcotest.(check bool) "updated" true (Heap_file.get heap r2 = Some "BETA!");
  Alcotest.check_raises "size change rejected"
    (Invalid_argument "Heap_file.update: size change") (fun () ->
      ignore (Heap_file.update heap r2 "too-long-now"));
  stamp (Heap_file.delete heap r1);
  check Alcotest.(option string) "deleted" None (Heap_file.get heap r1);
  Alcotest.check_raises "delete missing" Not_found (fun () ->
      ignore (Heap_file.delete heap r1))

let test_heap_file_grows_chains () =
  let _, _, heap, stamp = make_heap () in
  let record = String.make 500 'r' in
  let rids =
    List.init 100 (fun _ ->
        let rid, ds = Heap_file.insert heap record in
        stamp ds;
        rid)
  in
  Alcotest.(check bool) "multiple pages" true (List.length (Heap_file.page_ids heap) > 1);
  let seen = ref 0 in
  Heap_file.iter heap (fun _ r ->
      incr seen;
      assert (r = record));
  check Alcotest.int "iter sees all" 100 !seen;
  (* all rids distinct *)
  check Alcotest.int "rids distinct" 100
    (List.length (List.sort_uniq Heap_file.rid_compare rids))

let test_heap_file_attach () =
  let _, pool, heap, stamp = make_heap () in
  let record = String.make 700 's' in
  for _ = 1 to 50 do
    let _, ds = Heap_file.insert heap record in
    stamp ds
  done;
  let disk = Bufpool.disk pool in
  let reopened = Heap_file.attach pool disk ~first_page:(Heap_file.first_page heap) in
  check
    Alcotest.(list int)
    "same chain" (Heap_file.page_ids heap) (Heap_file.page_ids reopened);
  let n = ref 0 in
  Heap_file.iter reopened (fun _ _ -> incr n);
  check Alcotest.int "all records visible" 50 !n

let () =
  Alcotest.run "storage"
    [
      ("page", [ Alcotest.test_case "header" `Quick test_page_header ]);
      ( "page-diff",
        [
          Alcotest.test_case "empty" `Quick test_diff_empty;
          Alcotest.test_case "ignores lsn" `Quick test_diff_ignores_lsn;
          qtest prop_diff_apply;
        ] );
      ( "disk",
        [
          Alcotest.test_case "read/write" `Quick test_disk_rw;
          Alcotest.test_case "unwritten vs bogus ids" `Quick
            test_disk_unwritten_vs_bogus;
          Alcotest.test_case "checksum roundtrip" `Quick test_disk_checksum_roundtrip;
        ] );
      ( "heap-page",
        [
          Alcotest.test_case "insert/get/delete" `Quick test_heap_page_insert_get_delete;
          Alcotest.test_case "fill and compact" `Quick test_heap_page_fill_and_compact;
          Alcotest.test_case "set in place" `Quick test_heap_page_set_in_place;
          Alcotest.test_case "too large" `Quick test_heap_page_too_large;
          qtest prop_heap_page_model;
        ] );
      ( "bufpool",
        [
          Alcotest.test_case "hit/miss" `Quick test_bufpool_hit_miss;
          Alcotest.test_case "update/stamp/flush + WAL rule" `Quick
            test_bufpool_update_stamp_flush;
          Alcotest.test_case "eviction" `Quick test_bufpool_eviction_respects_capacity;
          Alcotest.test_case "clock second chance" `Quick
            test_bufpool_clock_second_chance;
          Alcotest.test_case "dirty churn stays consistent" `Quick
            test_bufpool_dirty_churn_consistent;
          Alcotest.test_case "no-steal window" `Quick test_bufpool_unstamped_not_evicted;
          Alcotest.test_case "dirty page table" `Quick test_bufpool_dpt;
          Alcotest.test_case "drop_all" `Quick test_bufpool_drop_all;
          Alcotest.test_case "update raise restores pre-image" `Quick
            test_bufpool_update_raise_restores;
          Alcotest.test_case "capacity zero" `Quick test_bufpool_capacity_zero;
          Alcotest.test_case "transient I/O retry" `Quick test_bufpool_io_retry;
        ] );
      ( "heap-file",
        [
          Alcotest.test_case "crud" `Quick test_heap_file_crud;
          Alcotest.test_case "grows across pages" `Quick test_heap_file_grows_chains;
          Alcotest.test_case "attach rebuilds" `Quick test_heap_file_attach;
        ] );
    ]
