module Rng = Ivdb_util.Rng
module Zipf = Ivdb_util.Zipf
module Stats = Ivdb_util.Stats
module Metrics = Ivdb_util.Metrics
module B = Ivdb_util.Bytes_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_float_range () =
  let r = Rng.create 99 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let r = Rng.create 11 in
  let child = Rng.split r in
  let parent_vals = List.init 10 (fun _ -> Rng.next r) in
  let child_vals = List.init 10 (fun _ -> Rng.next child) in
  Alcotest.(check bool) "different streams" true (parent_vals <> child_vals)

(* --- Zipf --------------------------------------------------------------- *)

let test_zipf_uniform () =
  let z = Zipf.create ~n:4 ~theta:0. in
  let r = Rng.create 3 in
  let counts = Array.make 4 0 in
  for _ = 1 to 8000 do
    let k = Zipf.draw z r in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 1600 && c < 2400))
    counts

let test_zipf_skew_orders_heads () =
  let z = Zipf.create ~n:100 ~theta:1.2 in
  let r = Rng.create 4 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20000 do
    let k = Zipf.draw z r in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "head dominates" true (counts.(0) > counts.(50) * 5);
  Alcotest.(check bool) "monotone-ish" true (counts.(0) >= counts.(1))

let test_zipf_bounds () =
  let z = Zipf.create ~n:7 ~theta:0.99 in
  let r = Rng.create 13 in
  for _ = 1 to 1000 do
    let k = Zipf.draw z r in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 7)
  done

(* --- Stats -------------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4.; 5. ];
  check (Alcotest.float 1e-9) "mean" 3. (Stats.mean s);
  check Alcotest.int "count" 5 (Stats.count s);
  check (Alcotest.float 1e-9) "min" 1. (Stats.min s);
  check (Alcotest.float 1e-9) "max" 5. (Stats.max s);
  check (Alcotest.float 1e-6) "stddev" (sqrt 2.5) (Stats.stddev s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p50" 50. (Stats.percentile s 50.);
  check (Alcotest.float 1e-9) "p99" 99. (Stats.percentile s 99.);
  check (Alcotest.float 1e-9) "p100" 100. (Stats.percentile s 100.)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 1e-9) "mean of empty" 0. (Stats.mean s);
  Alcotest.check_raises "min of empty" (Invalid_argument "Stats.min: empty")
    (fun () -> ignore (Stats.min s))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.; 2. ];
  List.iter (Stats.add b) [ 3.; 4. ];
  let m = Stats.merge a b in
  check Alcotest.int "count" 4 (Stats.count m);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean m);
  check (Alcotest.float 1e-9) "p25 uses both" 1. (Stats.percentile m 25.)

(* --- Metrics ------------------------------------------------------------ *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.add m "a" 4;
  Metrics.incr m "b";
  check Alcotest.int "a" 5 (Metrics.get m "a");
  check Alcotest.int "b" 1 (Metrics.get m "b");
  check Alcotest.int "absent" 0 (Metrics.get m "zzz")

let test_metrics_diff () =
  let m = Metrics.create () in
  Metrics.add m "x" 3;
  let before = Metrics.snapshot m in
  Metrics.add m "x" 2;
  Metrics.incr m "y";
  let after = Metrics.snapshot m in
  let d = Metrics.diff ~before ~after in
  check Alcotest.int "x delta" 2 (List.assoc "x" d);
  check Alcotest.int "y delta" 1 (List.assoc "y" d)

(* counters first registered between the two snapshots (a server started
   mid-run) must report their full value; counters only on the before
   side count down to zero *)
let test_metrics_diff_mid_run_registration () =
  let m = Metrics.create () in
  Metrics.add m "pre" 3;
  let before = Metrics.snapshot m in
  Metrics.add m "pre" 1;
  Metrics.add m "server.accepted" 7;
  let after = Metrics.snapshot m in
  let d = Metrics.diff ~before ~after in
  check Alcotest.int "pre delta" 1 (List.assoc "pre" d);
  check Alcotest.int "late counter reports full value" 7
    (List.assoc "server.accepted" d);
  let d2 = Metrics.diff ~before:[ ("gone", 5) ] ~after:[] in
  check Alcotest.int "before-only counts down" (-5) (List.assoc "gone" d2);
  (* unsorted hand-built snapshots work too *)
  let d3 =
    Metrics.diff
      ~before:[ ("b", 1); ("a", 2) ]
      ~after:[ ("a", 5); ("c", 1); ("b", 1) ]
  in
  check
    Alcotest.(list (pair string int))
    "sorted union" [ ("a", 3); ("c", 1) ]
    (List.filter (fun (_, v) -> v <> 0) d3)

let test_metrics_typed_handles () =
  let m = Metrics.create () in
  let c = Metrics.counter m "hot" in
  Metrics.inc c;
  Metrics.inc_by c 4;
  check Alcotest.int "handle value" 5 (Metrics.value c);
  check Alcotest.int "stringly sees it" 5 (Metrics.get m "hot");
  (* both routes land in the same cell *)
  Metrics.incr m "hot";
  check Alcotest.int "one cell" 6 (Metrics.value c);
  let h = Metrics.hist m "sizes" in
  Metrics.record h 3;
  Metrics.record h 3;
  Metrics.observe m "sizes" 5;
  check
    Alcotest.(list (pair int int))
    "hist snapshot" [ (3, 2); (5, 1) ]
    (Metrics.hist_snapshot m "sizes")

let test_metrics_reset_keeps_handles () =
  let m = Metrics.create () in
  let c = Metrics.counter m "n" in
  let h = Metrics.hist m "h" in
  Metrics.inc c;
  Metrics.record h 1;
  Metrics.reset m;
  check Alcotest.int "counter zeroed" 0 (Metrics.value c);
  check Alcotest.(list (pair int int)) "hist emptied" [] (Metrics.hist_snapshot m "h");
  (* handles resolved before the reset still feed the registry *)
  Metrics.inc c;
  Metrics.record h 9;
  check Alcotest.int "counter live" 1 (Metrics.get m "n");
  check Alcotest.int "hist live" 1 (Metrics.hist_count m "h")

let test_metrics_hists_and_pp_deterministic () =
  let m = Metrics.create () in
  Metrics.observe m "zz" 1;
  Metrics.observe m "aa" 2;
  check
    Alcotest.(list string)
    "hists sorted by name" [ "aa"; "zz" ]
    (List.map fst (Metrics.hists m));
  let d = Metrics.hist_diff ~before:[ (1, 2); (2, 1) ] ~after:[ (1, 2); (2, 3); (5, 1) ] in
  check Alcotest.(list (pair int int)) "hist diff drops zero deltas" [ (2, 2); (5, 1) ] d;
  (* pp output is independent of registration order *)
  let m2 = Metrics.create () in
  Metrics.observe m2 "aa" 2;
  Metrics.observe m2 "zz" 1;
  Metrics.incr m "k";
  Metrics.incr m2 "k";
  check Alcotest.string "pp deterministic"
    (Format.asprintf "%a" Metrics.pp m)
    (Format.asprintf "%a" Metrics.pp m2)

let test_metrics_hist_mean_empty () =
  let m = Metrics.create () in
  let h = Metrics.hist m "empty" in
  (* the guard: a histogram nobody recorded into means 0., not NaN *)
  check (Alcotest.float 1e-9) "empty mean" 0. (Metrics.hist_mean m "empty");
  check (Alcotest.float 1e-9) "absent mean" 0. (Metrics.hist_mean m "nope");
  Metrics.record h 4;
  Metrics.record h 8;
  check (Alcotest.float 1e-9) "mean" 6. (Metrics.hist_mean m "empty")

let test_metrics_percentile_cells () =
  check Alcotest.int "empty" 0 (Metrics.percentile_cells [] 95.);
  let cells = [ (1, 50); (10, 45); (100, 5) ] in
  check Alcotest.int "p50" 1 (Metrics.percentile_cells cells 50.);
  check Alcotest.int "p95" 10 (Metrics.percentile_cells cells 95.);
  check Alcotest.int "p99" 100 (Metrics.percentile_cells cells 99.);
  check Alcotest.int "p0 clamps to first" 1 (Metrics.percentile_cells cells 0.);
  check Alcotest.int "p100" 100 (Metrics.percentile_cells cells 100.);
  check Alcotest.int "single" 7 (Metrics.percentile_cells [ (7, 1) ] 95.)

let test_metrics_to_prometheus () =
  let m = Metrics.create () in
  Metrics.add m "txn.commit" 3;
  Metrics.incr m "lock.wait";
  let h = Metrics.hist m "server.request.ticks" in
  Metrics.record h 1;
  Metrics.record h 1;
  Metrics.record h 5;
  let text = Metrics.to_prometheus m in
  let has sub =
    let n = String.length sub and l = String.length text in
    let rec go i = i + n <= l && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter family" true
    (has "# TYPE ivdb_txn_commit counter");
  Alcotest.(check bool) "counter value" true (has "ivdb_txn_commit 3");
  Alcotest.(check bool) "hist family" true
    (has "# TYPE ivdb_server_request_ticks histogram");
  (* buckets are cumulative, capped with +Inf, and sum/count close out *)
  Alcotest.(check bool) "bucket le=1" true
    (has "ivdb_server_request_ticks_bucket{le=\"1\"} 2");
  Alcotest.(check bool) "bucket le=5" true
    (has "ivdb_server_request_ticks_bucket{le=\"5\"} 3");
  Alcotest.(check bool) "bucket +Inf" true
    (has "ivdb_server_request_ticks_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "sum" true (has "ivdb_server_request_ticks_sum 7");
  Alcotest.(check bool) "count" true (has "ivdb_server_request_ticks_count 3");
  (* deterministic: same registry contents in another order, same text *)
  let m2 = Metrics.create () in
  let h2 = Metrics.hist m2 "server.request.ticks" in
  Metrics.record h2 5;
  Metrics.incr m2 "lock.wait";
  Metrics.record h2 1;
  Metrics.record h2 1;
  Metrics.add m2 "txn.commit" 3;
  check Alcotest.string "exposition deterministic" text (Metrics.to_prometheus m2)

(* --- Bytes_util ---------------------------------------------------------- *)

let test_bytes_roundtrip () =
  let b = Bytes.create 32 in
  B.set_u16 b 0 0xBEEF;
  check Alcotest.int "u16" 0xBEEF (B.get_u16 b 0);
  B.set_u32 b 2 0xDEADBEEF;
  check Alcotest.int "u32" 0xDEADBEEF (B.get_u32 b 2);
  B.set_i64 b 6 (-42L);
  check Alcotest.int64 "i64" (-42L) (B.get_i64 b 6)

let test_compare_sub () =
  let a = Bytes.of_string "abcdef" and b = Bytes.of_string "abcxyz" in
  Alcotest.(check bool) "equal prefix" true (B.compare_sub a 0 3 b 0 3 = 0);
  Alcotest.(check bool) "lt" true (B.compare_sub a 0 6 b 0 6 < 0);
  Alcotest.(check bool) "prefix shorter" true (B.compare_sub a 0 2 a 0 3 < 0)

let prop_u16_roundtrip =
  QCheck.Test.make ~name:"u16 roundtrip" ~count:200
    QCheck.(int_bound 0xFFFF)
    (fun v ->
      let b = Bytes.create 2 in
      B.set_u16 b 0 v;
      B.get_u16 b 0 = v)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "uniform at theta 0" `Quick test_zipf_uniform;
          Alcotest.test_case "skew favours head" `Quick test_zipf_skew_orders_heads;
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "diff" `Quick test_metrics_diff;
          Alcotest.test_case "diff mid-run registration" `Quick
            test_metrics_diff_mid_run_registration;
          Alcotest.test_case "typed handles" `Quick test_metrics_typed_handles;
          Alcotest.test_case "reset keeps handles" `Quick
            test_metrics_reset_keeps_handles;
          Alcotest.test_case "hists + deterministic pp" `Quick
            test_metrics_hists_and_pp_deterministic;
          Alcotest.test_case "hist mean guards empty" `Quick
            test_metrics_hist_mean_empty;
          Alcotest.test_case "percentile over cells" `Quick
            test_metrics_percentile_cells;
          Alcotest.test_case "prometheus exposition" `Quick
            test_metrics_to_prometheus;
        ] );
      ( "bytes",
        [
          Alcotest.test_case "roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "compare_sub" `Quick test_compare_sub;
          qtest prop_u16_roundtrip;
        ] );
    ]
