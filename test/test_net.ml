(* The serving layer end to end: loopback smoke, error/transaction
   semantics through the wire, admission control, graceful drain, and the
   closed-loop network workload on both transports. Everything except the
   TCP cases runs on the deterministic loopback transport inside a seeded
   scheduler run. *)

module Sched = Ivdb_sched.Sched
module Database = Ivdb.Database
module Workload = Ivdb.Workload
module Metrics = Ivdb_util.Metrics
module Sql = Ivdb_sql.Sql
module Wire = Ivdb_wire.Wire
module Transport = Ivdb_transport.Transport
module Server = Ivdb_server.Server
module Client = Ivdb_client.Client
module Net_workload = Ivdb_client.Net_workload

let check = Alcotest.check

(* Boot a loopback server around [f], which receives a dial function.
   Returns [f]'s result after a clean drain. *)
let with_loopback_server ?config ?(seed = 11) db f =
  Sched.run ~seed (fun () ->
      let net = Transport.Loopback.create ~backlog:64 () in
      let srv = Server.create ?config db (Transport.Loopback.listener net) in
      Server.serve srv;
      let r = f srv (Transport.Loopback.dialer net) in
      Server.drain srv;
      r)

let affected = function
  | Sql.Affected n -> n
  | _ -> Alcotest.fail "expected Affected"

let rows = function
  | Sql.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected Rows"

(* --- smoke ----------------------------------------------------------------- *)

let test_loopback_smoke () =
  let db = Database.create () in
  with_loopback_server db (fun _srv dial ->
      let cl = Client.connect dial in
      Alcotest.(check bool) "session assigned" true (Client.session_id cl > 0);
      check Alcotest.string "server name" "ivdb" (Client.server_name cl);
      ignore (Client.exec cl "CREATE TABLE t (a INT NOT NULL, b TEXT)");
      check Alcotest.int "insert count" 2
        (affected (Client.exec cl "INSERT INTO t VALUES (1, 'x'), (2, 'y')"));
      check Alcotest.int "rows back" 2
        (List.length (rows (Client.exec cl "SELECT a, b FROM t ORDER BY a")));
      Client.close cl);
  let m = Database.metrics db in
  check Alcotest.int "accepted" 1 (Metrics.get m "server.accepted");
  check Alcotest.int "no leaked connections" (Metrics.get m "server.accepted")
    (Metrics.get m "server.sessions_closed");
  check Alcotest.int "nothing shed" 0 (Metrics.get m "server.shed")

let test_two_clients_interleave () =
  let db = Database.create () in
  with_loopback_server db (fun _srv dial ->
      let c1 = Client.connect dial in
      let c2 = Client.connect dial in
      ignore (Client.exec c1 "CREATE TABLE t (a INT NOT NULL)");
      ignore (Client.exec c1 "BEGIN");
      ignore (Client.exec c2 "BEGIN");
      ignore (Client.exec c1 "INSERT INTO t VALUES (1)");
      ignore (Client.exec c2 "INSERT INTO t VALUES (2)");
      ignore (Client.exec c1 "COMMIT");
      ignore (Client.exec c2 "COMMIT");
      check Alcotest.int "both transactions landed" 2
        (List.length (rows (Client.exec c1 "SELECT a FROM t")));
      Alcotest.(check bool) "distinct sessions" true
        (Client.session_id c1 <> Client.session_id c2);
      Client.close c1;
      Client.close c2)

(* --- regression: an error inside BEGIN..COMMIT leaves the transaction
   open and usable (in-process and through the server) ---------------------- *)

let test_error_keeps_txn_in_process () =
  let db = Database.create () in
  let s = Sql.session db in
  ignore (Sql.exec s "CREATE TABLE t (a INT NOT NULL)");
  ignore (Sql.exec s "BEGIN");
  ignore (Sql.exec s "INSERT INTO t VALUES (1)");
  (try ignore (Sql.exec s "INSERT INTO nosuch VALUES (1)")
   with Sql.Sql_error _ -> ());
  Alcotest.(check bool) "txn survives the error" true (Sql.in_transaction s);
  ignore (Sql.exec s "INSERT INTO t VALUES (2)");
  ignore (Sql.exec s "COMMIT");
  Alcotest.(check bool) "txn closed" false (Sql.in_transaction s);
  match Sql.exec s "SELECT a FROM t" with
  | Sql.Rows { rows; _ } -> check Alcotest.int "both inserts" 2 (List.length rows)
  | _ -> Alcotest.fail "expected rows"

let test_error_keeps_txn_over_wire () =
  let db = Database.create () in
  with_loopback_server db (fun _srv dial ->
      let cl = Client.connect dial in
      ignore (Client.exec cl "CREATE TABLE t (a INT NOT NULL)");
      ignore (Client.exec cl "BEGIN");
      ignore (Client.exec cl "INSERT INTO t VALUES (1)");
      (try
         ignore (Client.exec cl "INSERT INTO nosuch VALUES (1)");
         Alcotest.fail "expected Server_error"
       with Client.Server_error { code; txn_open; _ } ->
         check Alcotest.string "code" "sql" (Wire.error_code_name code);
         Alcotest.(check bool) "Err says txn still open" true txn_open);
      (* the same session keeps going inside the same transaction *)
      ignore (Client.exec cl "INSERT INTO t VALUES (2)");
      ignore (Client.exec cl "COMMIT");
      check Alcotest.int "both inserts visible" 2
        (List.length (rows (Client.exec cl "SELECT a FROM t")));
      Client.close cl)

let test_parse_error_over_wire () =
  let db = Database.create () in
  with_loopback_server db (fun _srv dial ->
      let cl = Client.connect dial in
      (try
         ignore (Client.exec cl "SELEKT 1");
         Alcotest.fail "expected Server_error"
       with Client.Server_error { code; _ } ->
         check Alcotest.string "code" "parse" (Wire.error_code_name code));
      (* connection survives a parse error *)
      ignore (Client.exec cl "CREATE TABLE t (a INT NOT NULL)");
      Client.close cl)

(* --- admission control ----------------------------------------------------- *)

let test_admission_sheds_with_busy () =
  let db = Database.create () in
  let config = { Server.default_config with max_inflight = 2 } in
  with_loopback_server ~config db (fun srv dial ->
      let c1 = Client.connect dial in
      let c2 = Client.connect dial in
      check Alcotest.int "inflight at cap" 2 (Server.inflight srv);
      (try
         (* a single attempt: no retry masking the shed *)
         ignore (Client.connect ~attempts:1 dial);
         Alcotest.fail "expected Server_busy"
       with Client.Server_busy { retry_ticks } ->
         Alcotest.(check bool) "backoff hint" true (retry_ticks > 0));
      Client.close c1;
      Client.close c2);
  let m = Database.metrics db in
  check Alcotest.int "accepted" 2 (Metrics.get m "server.accepted");
  check Alcotest.int "shed exactly one" 1 (Metrics.get m "server.shed");
  check Alcotest.int "no leaked connections" (Metrics.get m "server.accepted")
    (Metrics.get m "server.sessions_closed")

let test_shed_client_retries_in () =
  (* with retries allowed, a shed client gets in once capacity frees up *)
  let db = Database.create () in
  let config = { Server.default_config with max_inflight = 1 } in
  with_loopback_server ~config db (fun _srv dial ->
      let c1 = Client.connect dial in
      ignore (Client.exec c1 "CREATE TABLE t (a INT NOT NULL)");
      let second = ref None in
      let fiber =
        Sched.spawn (fun () -> second := Some (Client.connect ~attempts:32 dial))
      in
      ignore fiber;
      (* keep the slot busy for a while, then release it *)
      for i = 1 to 3 do
        ignore (Client.exec c1 (Printf.sprintf "INSERT INTO t VALUES (%d)" i))
      done;
      Client.close c1;
      (* let the retrying client win the slot *)
      for _ = 1 to 200 do
        Sched.yield ()
      done;
      match !second with
      | None -> Alcotest.fail "retrying client never admitted"
      | Some c2 ->
          check Alcotest.int "sees committed data" 3
            (List.length (rows (Client.exec c2 "SELECT a FROM t")));
          Client.close c2);
  let m = Database.metrics db in
  Alcotest.(check bool) "shed at least once" true (Metrics.get m "server.shed" >= 1);
  check Alcotest.int "no leaked connections" (Metrics.get m "server.accepted")
    (Metrics.get m "server.sessions_closed")

(* --- graceful drain -------------------------------------------------------- *)

let test_drain_lets_open_txn_finish () =
  let db = Database.create () in
  with_loopback_server db (fun srv dial ->
      let busy = Client.connect dial in
      let idle = Client.connect dial in
      ignore (Client.exec busy "CREATE TABLE t (a INT NOT NULL)");
      ignore (Client.exec busy "BEGIN");
      ignore (Client.exec busy "INSERT INTO t VALUES (1)");
      Server.drain srv;
      Alcotest.(check bool) "draining" true (Server.draining srv);
      (* new connections are refused at the transport *)
      (try
         ignore (Client.connect ~attempts:1 dial);
         Alcotest.fail "expected refusal"
       with Transport.Refused -> ());
      (* the open transaction may still run to commit *)
      ignore (Client.exec busy "INSERT INTO t VALUES (2)");
      ignore (Client.exec busy "COMMIT");
      (* an idle session's next request is turned away *)
      (try
         ignore (Client.exec idle "SELECT a FROM t");
         Alcotest.fail "expected draining error"
       with Client.Server_error { code; _ } ->
         check Alcotest.string "code" "draining" (Wire.error_code_name code));
      (* and so is the drained writer once its transaction is done *)
      (try ignore (Client.exec busy "SELECT a FROM t")
       with Client.Server_error { code; _ } ->
         check Alcotest.string "code" "draining" (Wire.error_code_name code));
      Client.close busy;
      Client.close idle);
  (* the committed-during-drain transaction is durable *)
  let s = Sql.session db in
  match Sql.exec s "SELECT a FROM t" with
  | Sql.Rows { rows; _ } ->
      check Alcotest.int "drain committed both rows" 2 (List.length rows)
  | _ -> Alcotest.fail "expected rows"

(* --- closed-loop network workload ------------------------------------------ *)

let small_spec =
  {
    Workload.default with
    mpl = 8;
    txns_per_worker = 6;
    ops_per_txn = 3;
    initial_rows = 40;
    seed = 5;
  }

let check_net_result spec result db =
  Alcotest.(check bool)
    "every transaction accounted" true
    (result.Workload.committed + result.Workload.given_up
    >= spec.Workload.mpl * spec.Workload.txns_per_worker);
  Alcotest.(check bool) "made progress" true (result.Workload.committed > 0);
  let get name =
    match List.assoc_opt name result.Workload.metrics with
    | Some v -> v
    | None -> 0
  in
  Alcotest.(check bool)
    "all clients admitted eventually" true
    (get "server.accepted" >= spec.Workload.mpl);
  check Alcotest.int "zero leaked connections" (get "server.accepted")
    (get "server.sessions_closed");
  Alcotest.(check bool)
    "V1 holds over the wire" true
    (Workload.check_consistency db (Database.view db "sales_by_product_0"))

let test_net_workload_loopback () =
  let result, db = Net_workload.run_net ~transport:Loopback small_spec in
  check_net_result small_spec result db

let test_net_workload_loopback_deterministic () =
  let r1, _ = Net_workload.run_net ~transport:Loopback small_spec in
  let r2, _ = Net_workload.run_net ~transport:Loopback small_spec in
  check Alcotest.int "same commits" r1.Workload.committed r2.Workload.committed;
  check Alcotest.int "same ticks" r1.Workload.ticks r2.Workload.ticks;
  check
    Alcotest.(list (pair int int))
    "same batch histogram" r1.Workload.batch_hist r2.Workload.batch_hist

let test_net_workload_group_commit_batches () =
  let spec =
    {
      small_spec with
      config =
        {
          small_spec.Workload.config with
          commit_mode =
            Ivdb_txn.Txn.Group { max_batch = 8; max_wait_ticks = 50 };
        };
    }
  in
  let result, db = Net_workload.run_net ~transport:Loopback spec in
  check_net_result spec result db;
  (* independent client connections are exactly what group commit batches *)
  Alcotest.(check bool)
    "batches formed" true
    (result.Workload.mean_batch >= 1.0);
  Alcotest.(check bool)
    "fewer forces than commits" true
    (result.Workload.forces < result.Workload.committed)

let test_net_workload_overload_sheds () =
  let config =
    { Server.default_config with max_inflight = 3; busy_retry_ticks = 20 }
  in
  let result, db =
    Net_workload.run_net ~transport:Loopback ~server_config:config small_spec
  in
  let get name =
    match List.assoc_opt name result.Workload.metrics with
    | Some v -> v
    | None -> 0
  in
  Alcotest.(check bool) "sheds under overload" true (get "server.shed" > 0);
  Alcotest.(check bool) "still commits" true (result.Workload.committed > 0);
  check Alcotest.int "zero leaked connections" (get "server.accepted")
    (get "server.sessions_closed");
  Alcotest.(check bool)
    "V1 holds under shed" true
    (Workload.check_consistency db (Database.view db "sales_by_product_0"))

let test_net_workload_tcp () =
  let spec = { small_spec with mpl = 4; txns_per_worker = 4 } in
  let result, db = Net_workload.run_net ~transport:Tcp spec in
  check_net_result spec result db

let () =
  Alcotest.run "net"
    [
      ( "smoke",
        [
          Alcotest.test_case "loopback request/response" `Quick
            test_loopback_smoke;
          Alcotest.test_case "two clients interleave" `Quick
            test_two_clients_interleave;
        ] );
      ( "error semantics",
        [
          Alcotest.test_case "error keeps txn (in-process)" `Quick
            test_error_keeps_txn_in_process;
          Alcotest.test_case "error keeps txn (over wire)" `Quick
            test_error_keeps_txn_over_wire;
          Alcotest.test_case "parse error over wire" `Quick
            test_parse_error_over_wire;
        ] );
      ( "admission",
        [
          Alcotest.test_case "sheds with Busy at cap" `Quick
            test_admission_sheds_with_busy;
          Alcotest.test_case "shed client retries in" `Quick
            test_shed_client_retries_in;
        ] );
      ( "drain",
        [
          Alcotest.test_case "open txn finishes, idle turned away" `Quick
            test_drain_lets_open_txn_finish;
        ] );
      ( "net workload",
        [
          Alcotest.test_case "loopback closed loop" `Quick
            test_net_workload_loopback;
          Alcotest.test_case "loopback deterministic" `Quick
            test_net_workload_loopback_deterministic;
          Alcotest.test_case "group commit batches over the wire" `Quick
            test_net_workload_group_commit_batches;
          Alcotest.test_case "overload sheds with Busy" `Quick
            test_net_workload_overload_sheds;
          Alcotest.test_case "tcp closed loop" `Quick test_net_workload_tcp;
        ] );
    ]
