(* The crash-point sweep: run a small concurrent workload and crash it at
   EVERY injection point — the n-th disk write, the n-th WAL force, clean
   and torn variants, under sync and group commit — then recover and check
   the two invariants that define correctness under power loss:

   - durability: every transaction whose [Database.transact] returned
     before the crash is fully present after recovery;
   - consistency (V1): every indexed view equals a from-scratch
     recomputation over its base table.

   The sweep is exhaustive because injection is deterministic: a counting
   run under a trigger-less plan learns how many write/force points the
   workload has, and the armed runs replay identically up to the trigger. *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Workload = Ivdb.Workload
module Fault = Ivdb_storage.Fault
module Maintain = Ivdb_core.Maintain
module Txn = Ivdb_txn.Txn
module Sched = Ivdb_sched.Sched
module Rng = Ivdb_util.Rng
module Metrics = Ivdb_util.Metrics
module Value = Ivdb_relation.Value

let qtest = QCheck_alcotest.to_alcotest

(* Small on purpose: the sweep runs the whole workload once per injection
   point. A tiny pool forces evictions (mid-run page writes) and periodic
   checkpoints force flushes, so both crash sites get exercised early. *)
let spec_of mode =
  {
    Workload.default with
    seed = 7;
    mpl = 3;
    txns_per_worker = 3;
    ops_per_txn = 3;
    delete_fraction = 0.;
    n_groups = 5;
    theta = 0.8;
    initial_rows = 20;
    strategy = Maintain.Escrow;
    config =
      {
        Workload.default.Workload.config with
        Database.pool_capacity = 8;
        commit_mode = mode;
      };
  }

let seed = 7
let ckpt_every = 3

(* A deterministic insert-only workload that tracks acknowledgement: ids
   enter [acked] only after [Database.transact] returns, i.e. after the
   commit was made durable under the mode's contract. Insert-only keeps the
   durability check a plain subset test. *)
let run_until_crash db sales ~mpl ~txns_per_worker ~ops =
  let acked = ref [] in
  let next_id = ref 0 in
  let committed = ref 0 in
  let crashed = ref false in
  (try
     Sched.run ~seed (fun () ->
         let remaining = ref mpl in
         let wake_main = ref (fun () -> ()) in
         for w = 1 to mpl do
           ignore
             (Sched.spawn (fun () ->
                  Fun.protect
                    ~finally:(fun () ->
                      decr remaining;
                      if !remaining = 0 then !wake_main ())
                    (fun () ->
                      let rng = Rng.create ((seed * 31) + w) in
                      for _ = 1 to txns_per_worker do
                        let ids = ref [] in
                        (try
                           Database.transact db (fun tx ->
                               for _ = 1 to ops do
                                 incr next_id;
                                 let id = !next_id in
                                 ignore
                                   (Table.insert db tx sales
                                      [|
                                        Value.Int id;
                                        Value.Int (1 + Rng.int rng 5);
                                        Value.Int (1 + Rng.int rng 10);
                                        Value.Float 1.;
                                      |]);
                                 ids := id :: !ids;
                                 Sched.yield ()
                               done);
                           acked := !ids @ !acked;
                           incr committed;
                           if !committed mod ckpt_every = 0 then
                             Database.checkpoint db
                         with Txn.Conflict _ -> ());
                        Sched.yield ()
                      done)))
         done;
         if !remaining > 0 then Sched.suspend (fun wake _cancel -> wake_main := wake))
   with Fault.Crash_point _ -> crashed := true);
  (!acked, !committed, !crashed)

let surviving_ids db sales =
  Query.table_scan db None sales Query.Dirty
  |> Seq.filter_map (fun row ->
         match row.(0) with
         | Value.Int id when id > 0 -> Some id
         | _ -> None)
  |> List.of_seq

(* One injection point: fresh deterministic db + workload, armed plan,
   expect the trigger to fire, recover, check durability + V1. *)
let run_point spec fcfg desc =
  let db, sales, _views = Workload.setup spec in
  Database.install_fault db fcfg;
  let acked, _committed, crashed =
    run_until_crash db sales ~mpl:spec.Workload.mpl
      ~txns_per_worker:spec.Workload.txns_per_worker
      ~ops:spec.Workload.ops_per_txn
  in
  if not crashed then
    Alcotest.failf "%s: armed trigger did not fire (sweep out of sync)" desc;
  let db' = Database.crash db in
  let sales' = Database.table db' "sales" in
  let present = surviving_ids db' sales' in
  List.iter
    (fun id ->
      if not (List.mem id present) then
        Alcotest.failf "%s: acked row %d lost by the crash" desc id)
    acked;
  let v' = Database.view db' "sales_by_product_0" in
  if not (Workload.check_consistency db' v') then
    Alcotest.failf "%s: view inconsistent after recovery" desc

let count_points spec =
  let db, sales, _views = Workload.setup spec in
  (* a trigger-less live plan counts every injection point it passes *)
  Database.install_fault db Fault.no_faults;
  let _acked, committed, crashed =
    run_until_crash db sales ~mpl:spec.Workload.mpl
      ~txns_per_worker:spec.Workload.txns_per_worker
      ~ops:spec.Workload.ops_per_txn
  in
  Alcotest.(check bool) "counting run crashed" false crashed;
  Alcotest.(check bool) "counting run committed" true (committed > 0);
  let plan = Database.fault_plan db in
  (Fault.writes_seen plan, Fault.forces_seen plan)

let sweep_test mode () =
  let spec = spec_of mode in
  let n_writes, n_forces = count_points spec in
  Alcotest.(check bool) "workload has disk-write points" true (n_writes > 0);
  Alcotest.(check bool) "workload has force points" true (n_forces > 0);
  for k = 1 to n_writes do
    run_point spec
      { Fault.no_faults with crash_at_write = Some k }
      (Printf.sprintf "clean crash at write %d" k);
    run_point spec
      { Fault.no_faults with crash_at_write = Some k; torn_writes = true }
      (Printf.sprintf "torn crash at write %d" k)
  done;
  for k = 1 to n_forces do
    run_point spec
      { Fault.no_faults with crash_at_force = Some k }
      (Printf.sprintf "clean crash at force %d" k);
    run_point spec
      { Fault.no_faults with crash_at_force = Some k; torn_tail = true }
      (Printf.sprintf "torn crash at force %d" k)
  done

(* Transient errors only: the run must complete (retries absorb every
   error), commit work, stay consistent — and actually have injected. *)
let test_transient_errors () =
  let spec = spec_of Txn.Sync in
  let db, sales, _views = Workload.setup spec in
  Database.install_fault db
    {
      Fault.no_faults with
      fault_seed = 11;
      read_error_p = 0.3;
      write_error_p = 0.3;
      max_consecutive_errors = 2;
    };
  let _acked, committed, crashed =
    run_until_crash db sales ~mpl:spec.Workload.mpl
      ~txns_per_worker:spec.Workload.txns_per_worker
      ~ops:spec.Workload.ops_per_txn
  in
  Alcotest.(check bool) "no crash" false crashed;
  Alcotest.(check bool) "committed" true (committed > 0);
  Alcotest.(check bool) "errors were injected" true
    (Fault.injected (Database.fault_plan db) > 0);
  let m = Database.metrics db in
  Alcotest.(check bool) "pool retried" true (Metrics.get m "buffer.io_retry" > 0);
  let v = Database.view db "sales_by_product_0" in
  Alcotest.(check bool) "consistent under transient errors" true
    (Workload.check_consistency db v)

(* Same armed config + seed twice => byte-identical outcome: the whole
   point of seeded injection is reproducible crashes. *)
let prop_injection_deterministic =
  QCheck.Test.make ~name:"same fault seed => same crash outcome" ~count:10
    QCheck.(int_bound 1000)
    (fun s ->
      let spec = spec_of Txn.Sync in
      let fcfg =
        {
          Fault.no_faults with
          fault_seed = s;
          crash_at_write = Some (1 + (s mod 5));
          torn_writes = s mod 2 = 0;
        }
      in
      let once () =
        let db, sales, _views = Workload.setup spec in
        Database.install_fault db fcfg;
        let acked, committed, crashed =
          run_until_crash db sales ~mpl:spec.Workload.mpl
            ~txns_per_worker:spec.Workload.txns_per_worker
            ~ops:spec.Workload.ops_per_txn
        in
        let plan = Database.fault_plan db in
        (List.sort compare acked, committed, crashed, Fault.writes_seen plan)
      in
      once () = once ())

let () =
  Alcotest.run "fault-props"
    [
      ( "crash-point sweep",
        [
          Alcotest.test_case "sync commit" `Quick (sweep_test Txn.Sync);
          Alcotest.test_case "group commit" `Quick
            (sweep_test (Txn.Group { max_batch = 4; max_wait_ticks = 30 }));
        ] );
      ( "transient errors",
        [ Alcotest.test_case "retries absorb errors" `Quick test_transient_errors ] );
      ( "determinism", [ qtest prop_injection_deterministic ] );
    ]
