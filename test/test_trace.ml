(* The structured engine trace: ring bounding, JSON rendering, stream
   determinism under the seeded scheduler, and the transact_result API. *)

module Trace = Ivdb_util.Trace
module Metrics = Ivdb_util.Metrics
module Sched = Ivdb_sched.Sched
module Database = Ivdb.Database
module Workload = Ivdb.Workload
module Txn = Ivdb_txn.Txn
module Name = Ivdb_lock.Lock_name
module Mode = Ivdb_lock.Lock_mode

let check = Alcotest.check

let config = { Database.default_config with read_cost = 0; write_cost = 0 }

(* --- plumbing ---------------------------------------------------------------- *)

let test_disabled_emits_nothing () =
  let tr = Trace.create () in
  let ring = Trace.Ring.create ~capacity:8 in
  Trace.add_sink tr (Trace.Ring.sink ring);
  Trace.emit tr (Trace.Txn_begin { txn = 1; system = false });
  check Alcotest.int "nothing recorded" 0 (Trace.Ring.seen ring);
  Trace.set_enabled tr true;
  Trace.emit tr (Trace.Txn_begin { txn = 1; system = false });
  check Alcotest.int "recorded once enabled" 1 (Trace.Ring.seen ring);
  (* seq numbering starts only when events are actually emitted *)
  check Alcotest.int "first seq is 0" 0
    (match Trace.Ring.contents ring with r :: _ -> r.Trace.seq | [] -> -1)

let test_ring_bounds () =
  let tr = Trace.create () in
  let ring = Trace.Ring.create ~capacity:4 in
  Trace.add_sink tr (Trace.Ring.sink ring);
  Trace.set_enabled tr true;
  for i = 1 to 10 do
    Trace.emit tr (Trace.Txn_begin { txn = i; system = false })
  done;
  check Alcotest.int "all events counted" 10 (Trace.Ring.seen ring);
  check Alcotest.int "only capacity retained" 4 (Trace.Ring.length ring);
  let txns =
    List.map
      (fun r ->
        match r.Trace.event with Trace.Txn_begin { txn; _ } -> txn | _ -> -1)
      (Trace.Ring.contents ring)
  in
  check Alcotest.(list int) "oldest retained first" [ 7; 8; 9; 10 ] txns;
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Trace.Ring.create: capacity must be > 0") (fun () ->
      ignore (Trace.Ring.create ~capacity:0))

let test_json_rendering () =
  let tr = Trace.create ~clock:(fun () -> 7) ~fiber:(fun () -> 3) () in
  let got = ref [] in
  Trace.add_sink tr (fun r -> got := Trace.to_json r :: !got);
  Trace.set_enabled tr true;
  Trace.emit tr (Trace.Lock_wait { txn = 5; name = "table:1"; mode = "X" });
  (* binary view keys must escape to pure 7-bit ASCII *)
  Trace.emit tr
    (Trace.View_delta { view = 2; key = "a\"b\\c\x00\xff"; strategy = "escrow" });
  (match !got with
  | [ delta; wait ] ->
      check Alcotest.string "lock event"
        {|{"seq": 0, "tick": 7, "fiber": 3, "ev": "lock.wait", "txn": 5, "lock": "table:1", "mode": "X"}|}
        wait;
      check Alcotest.string "escaped key"
        {|{"seq": 1, "tick": 7, "fiber": 3, "ev": "view.delta", "view": 2, "key": "a\"b\\c\u0000\u00ff", "strategy": "escrow"}|}
        delta;
      String.iter
        (fun c -> Alcotest.(check bool) "7-bit" true (Char.code c < 128))
        delta
  | _ -> Alcotest.fail "expected two events")

(* --- determinism -------------------------------------------------------------- *)

(* Same seed, same spec: the JSONL trace of the measured phase must be
   byte-identical across runs — the regression class that keeps
   nondeterminism (hashtable order, wall-clock, ids) out of the stream. *)
let traced_run seed =
  let spec =
    { Workload.default with seed; mpl = 4; txns_per_worker = 10; read_fraction = 0.2 }
  in
  let db, sales, views = Workload.setup spec in
  let buf = Buffer.create 4096 in
  let tr = Database.trace db in
  Trace.add_sink tr (fun r ->
      Buffer.add_string buf (Trace.to_json r);
      Buffer.add_char buf '\n');
  Trace.set_enabled tr true;
  ignore (Workload.run_on db sales views spec);
  Buffer.contents buf

let test_stream_deterministic () =
  let a = traced_run 42 and b = traced_run 42 in
  Alcotest.(check bool) "stream is nonempty" true (String.length a > 0);
  Alcotest.(check bool) "same seed, byte-identical stream" true (a = b);
  let c = traced_run 43 in
  Alcotest.(check bool) "different seed, different stream" true (a <> c)

let test_profile_renders () =
  let spec = { Workload.default with mpl = 8; txns_per_worker = 20 } in
  let db, sales, views = Workload.setup spec in
  let profile = Trace.Profile.create () in
  let tr = Database.trace db in
  Trace.add_sink tr (Trace.Profile.sink profile);
  Trace.set_enabled tr true;
  ignore (Workload.run_on db sales views spec);
  let report = Trace.Profile.render profile in
  Alcotest.(check bool) "has lock section" true
    (String.length report > 0
    && String.sub report 0 17 = "lock-wait profile");
  let report2 = Trace.Profile.render profile in
  check Alcotest.string "render is stable" report report2

(* --- transact_result ---------------------------------------------------------- *)

let test_transact_result_ok_and_user_abort () =
  let db = Database.create ~config () in
  (match Database.transact_result db (fun _ -> 42) with
  | Ok v -> check Alcotest.int "ok value" 42 v
  | Error _ -> Alcotest.fail "expected Ok");
  (match Database.transact_result db (fun _ -> raise Exit) with
  | Error (Database.User_abort Exit) -> ()
  | _ -> Alcotest.fail "expected User_abort Exit");
  (* the classic API re-raises the user exception unchanged *)
  Alcotest.check_raises "transact re-raises" Exit (fun () ->
      Database.transact db (fun _ -> raise Exit))

let test_transact_result_deadlock_victim () =
  let db = Database.create ~config () in
  let outcomes = ref [] in
  Sched.run ~policy:Sched.Fifo (fun () ->
      let worker first second =
        let r =
          Database.transact_result db ~retries:0 (fun tx ->
              Txn.lock (Database.mgr db) tx first Mode.X;
              Sched.yield ();
              Sched.yield ();
              Txn.lock (Database.mgr db) tx second Mode.X)
        in
        outcomes := r :: !outcomes
      in
      ignore (Sched.spawn (fun () -> worker (Name.Table 1) (Name.Table 2)));
      ignore (Sched.spawn (fun () -> worker (Name.Table 2) (Name.Table 1))));
  let victims =
    List.filter (fun r -> r = Error Database.Deadlock_victim) !outcomes
  in
  let oks = List.filter (fun r -> r = Ok ()) !outcomes in
  check Alcotest.int "exactly one victim" 1 (List.length victims);
  check Alcotest.int "the other commits" 1 (List.length oks);
  Alcotest.(check bool) "give-up counted" true
    (Metrics.get (Database.metrics db) "txn.give_up" >= 1)

let test_transact_retries_deadlock () =
  let db = Database.create ~config () in
  let committed = ref 0 in
  Sched.run ~policy:Sched.Fifo (fun () ->
      let worker first second =
        Database.transact db (fun tx ->
            Txn.lock (Database.mgr db) tx first Mode.X;
            Sched.yield ();
            Sched.yield ();
            Txn.lock (Database.mgr db) tx second Mode.X);
        incr committed
      in
      ignore (Sched.spawn (fun () -> worker (Name.Table 1) (Name.Table 2)));
      ignore (Sched.spawn (fun () -> worker (Name.Table 2) (Name.Table 1))));
  (* with retries left, the victim re-runs and both eventually commit *)
  check Alcotest.int "both commit" 2 !committed;
  Alcotest.(check bool) "retry counted" true
    (Metrics.get (Database.metrics db) "txn.retry" >= 1)

let () =
  Alcotest.run "trace"
    [
      ( "plumbing",
        [
          Alcotest.test_case "disabled emits nothing" `Quick
            test_disabled_emits_nothing;
          Alcotest.test_case "ring bounds" `Quick test_ring_bounds;
          Alcotest.test_case "json rendering" `Quick test_json_rendering;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same stream" `Quick
            test_stream_deterministic;
          Alcotest.test_case "profile renders" `Quick test_profile_renders;
        ] );
      ( "transact_result",
        [
          Alcotest.test_case "ok and user abort" `Quick
            test_transact_result_ok_and_user_abort;
          Alcotest.test_case "deadlock victim" `Quick
            test_transact_result_deadlock_victim;
          Alcotest.test_case "transact retries" `Quick
            test_transact_retries_deadlock;
        ] );
    ]
