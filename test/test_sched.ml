module Sched = Ivdb_sched.Sched

let check = Alcotest.check

let test_run_returns () =
  check Alcotest.int "result" 42 (Sched.run (fun () -> 42))

let test_spawn_runs_all () =
  let hits = ref [] in
  Sched.run (fun () ->
      for i = 1 to 5 do
        ignore (Sched.spawn (fun () -> hits := i :: !hits))
      done);
  check Alcotest.int "all fibers ran" 5 (List.length !hits)

let trace_of ~seed =
  let trace = ref [] in
  Sched.run ~seed (fun () ->
      for i = 1 to 4 do
        ignore
          (Sched.spawn (fun () ->
               trace := (i, 'a') :: !trace;
               Sched.yield ();
               trace := (i, 'b') :: !trace))
      done);
  List.rev !trace

let test_determinism_same_seed () =
  check
    Alcotest.(list (pair int char))
    "identical traces" (trace_of ~seed:7) (trace_of ~seed:7)

let test_determinism_seed_matters () =
  let t1 = trace_of ~seed:1 and t2 = trace_of ~seed:2 in
  Alcotest.(check bool) "seeds change interleaving" true (t1 <> t2)

let test_fifo_policy_round_robin () =
  let trace = ref [] in
  Sched.run ~policy:Sched.Fifo (fun () ->
      ignore (Sched.spawn (fun () -> trace := 1 :: !trace));
      ignore (Sched.spawn (fun () -> trace := 2 :: !trace));
      ignore (Sched.spawn (fun () -> trace := 3 :: !trace)));
  check Alcotest.(list int) "fifo order" [ 1; 2; 3 ] (List.rev !trace)

let test_suspend_wake () =
  let woken = ref false in
  let waker = ref (fun () -> ()) in
  Sched.run ~policy:Sched.Fifo (fun () ->
      ignore
        (Sched.spawn (fun () ->
             Sched.suspend (fun wake _cancel -> waker := wake);
             woken := true));
      ignore (Sched.spawn (fun () -> !waker ())));
  Alcotest.(check bool) "resumed after wake" true !woken

exception Killed

let test_suspend_cancel () =
  let observed = ref false in
  let canceller = ref (fun _ -> ()) in
  Sched.run ~policy:Sched.Fifo (fun () ->
      ignore
        (Sched.spawn (fun () ->
             (try Sched.suspend (fun _wake cancel -> canceller := cancel)
              with Killed -> observed := true)));
      ignore (Sched.spawn (fun () -> !canceller Killed)));
  Alcotest.(check bool) "exception delivered at suspension" true !observed

let test_cancel_then_wake_ignored () =
  let resumes = ref 0 in
  let cb = ref (fun () -> ()) and cc = ref (fun _ -> ()) in
  Sched.run ~policy:Sched.Fifo (fun () ->
      ignore
        (Sched.spawn (fun () ->
             (try
                Sched.suspend (fun wake cancel ->
                    cb := wake;
                    cc := cancel)
              with Killed -> ());
             incr resumes));
      ignore
        (Sched.spawn (fun () ->
             !cc Killed;
             !cb ())));
  check Alcotest.int "only one resumption" 1 !resumes

let test_stuck_detection () =
  Alcotest.check_raises "stuck" (Sched.Stuck 1) (fun () ->
      Sched.run (fun () ->
          ignore (Sched.spawn (fun () -> Sched.suspend (fun _ _ -> ())))))

let test_clock_advances () =
  let start, finish =
    Sched.run (fun () ->
        let a = Sched.now () in
        Sched.advance 500;
        (a, Sched.now ()))
  in
  Alcotest.(check bool) "advance adds" true (finish >= start + 500)

let test_self_ids () =
  let ids = ref [] in
  Sched.run (fun () ->
      ids := Sched.self () :: !ids;
      for _ = 1 to 3 do
        ignore (Sched.spawn (fun () -> ids := Sched.self () :: !ids))
      done);
  let sorted = List.sort_uniq compare !ids in
  check Alcotest.int "distinct fiber ids" 4 (List.length sorted)

let test_fiber_exception_propagates () =
  Alcotest.check_raises "propagates" Killed (fun () ->
      Sched.run (fun () -> ignore (Sched.spawn (fun () -> raise Killed))))

let test_outside_run_fallbacks () =
  Sched.yield ();
  check Alcotest.int "self" 0 (Sched.self ());
  check Alcotest.int "now" 0 (Sched.now ());
  Sched.advance 10;
  check Alcotest.int "alive" 1 (Sched.fibers_alive ())

let test_in_run () =
  Alcotest.(check bool) "outside" false (Sched.in_run ());
  let inside = Sched.run (fun () -> Sched.in_run ()) in
  Alcotest.(check bool) "inside" true inside;
  Alcotest.(check bool) "after" false (Sched.in_run ())

(* the FIFO run queue is a circular buffer whose head index wraps; a long
   churn of spawn/yield must preserve strict round-robin order across many
   wraparounds *)
let test_fifo_order_survives_wraparound () =
  let trace = ref [] in
  Sched.run ~policy:Sched.Fifo (fun () ->
      for i = 1 to 13 do
        ignore
          (Sched.spawn (fun () ->
               for round = 1 to 17 do
                 trace := (round, i) :: !trace;
                 Sched.yield ()
               done))
      done);
  let expected =
    List.concat_map
      (fun round -> List.init 13 (fun i -> (round, i + 1)))
      (List.init 17 (fun r -> r + 1))
  in
  check
    Alcotest.(list (pair int int))
    "strict round-robin across wraps" expected (List.rev !trace)

let test_nested_spawn () =
  let count = ref 0 in
  Sched.run (fun () ->
      ignore
        (Sched.spawn (fun () ->
             incr count;
             ignore (Sched.spawn (fun () -> incr count)))));
  check Alcotest.int "nested fibers run" 2 !count

let () =
  Alcotest.run "sched"
    [
      ( "core",
        [
          Alcotest.test_case "run returns" `Quick test_run_returns;
          Alcotest.test_case "spawn runs all" `Quick test_spawn_runs_all;
          Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
          Alcotest.test_case "self ids" `Quick test_self_ids;
          Alcotest.test_case "exception propagates" `Quick test_fiber_exception_propagates;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed same trace" `Quick test_determinism_same_seed;
          Alcotest.test_case "seed matters" `Quick test_determinism_seed_matters;
          Alcotest.test_case "fifo round robin" `Quick test_fifo_policy_round_robin;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "suspend/wake" `Quick test_suspend_wake;
          Alcotest.test_case "suspend/cancel" `Quick test_suspend_cancel;
          Alcotest.test_case "cancel then wake ignored" `Quick test_cancel_then_wake_ignored;
          Alcotest.test_case "stuck detection" `Quick test_stuck_detection;
        ] );
      ( "clock",
        [
          Alcotest.test_case "advance" `Quick test_clock_advances;
          Alcotest.test_case "outside run fallbacks" `Quick test_outside_run_fallbacks;
          Alcotest.test_case "in_run probe" `Quick test_in_run;
          Alcotest.test_case "fifo order survives wraparound" `Quick
            test_fifo_order_survives_wraparound;
        ] );
    ]
