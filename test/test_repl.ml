(* Replication by WAL shipping, exercised at the engine level.

   Properties:
   - a follower fed the primary's stable log — in any batch size, across
     seeds — converges to an identical logical state (tables AND views)
     at the same replicated LSN;
   - follower reads are lock-free snapshot reads (no lock-manager or WAL
     traffic), and the replica's views satisfy V1;
   - every local write path on a follower is rejected;
   - a torn shipped batch truncates to its longest dense prefix and
     re-shipping the remainder converges, at every byte cut;
   - a follower crash mid-stream recovers (no undo, no checkpoint) and
     resumes at its applied horizon;
   - the primary may crash at ANY force point (clean or torn tail) while
     a subscribed follower streams continuously; after recovery the
     follower resubscribes and converges to the recovered state;
   - follower reads never observe a split transaction: the applied
     horizon is gated to the last shipped commit boundary;
   - at any of those crash points the follower can instead PROMOTE,
     rolling back the in-flight transactions itself, and lands on exactly
     the state single-node recovery reaches — then serves writes;
   - the wire-level failover story holds end to end: the Promote admin
     frame, client repoint, replica-driver repoint, DropSlot retention
     release, and the redial backoff reset after a healthy session.

   The shipping harness uses the same serialize_range / decode_frames
   framing the wire protocol carries, so the byte-level fault behavior
   here is exactly what a network follower sees. *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Workload = Ivdb.Workload
module Wal = Ivdb_wal.Wal
module Log_record = Ivdb_wal.Log_record
module Fault = Ivdb_storage.Fault
module Txn = Ivdb_txn.Txn
module Sched = Ivdb_sched.Sched
module Rng = Ivdb_util.Rng
module Metrics = Ivdb_util.Metrics
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain

let qtest = QCheck_alcotest.to_alcotest

(* --- shipping harness ----------------------------------------------------- *)

(* Stream stable records [received_lsn f + 1 .. upto] to the follower in
   batches of [batch] records, through the wire's framing (serialize,
   decode, apply). The follower applies only up to the last commit
   boundary in what it received and buffers the rest, so the resume
   position is its receive horizon, not its applied one. Takes a bare
   [Wal.t] so a sweep can ship from a crashed primary's surviving log
   image. Returns the number of records shipped. *)
let ship_wal ?(batch = 64) ?upto wal follower =
  let upto = match upto with Some u -> u | None -> Wal.flushed_lsn wal in
  let shipped = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let from = Database.received_lsn follower + 1 in
    let hi = min upto (from + batch - 1) in
    if hi < from then continue_ := false
    else begin
      let bytes = Wal.serialize_range wal ~from ~upto:hi in
      let records = Wal.decode_frames ~first_lsn:from bytes in
      if List.length records <> hi - from + 1 then
        Alcotest.failf "ship: batch [%d,%d] decoded short" from hi;
      Database.apply_replicated follower records;
      shipped := !shipped + List.length records
    end
  done;
  !shipped

let ship ?batch ?upto primary follower =
  ship_wal ?batch ?upto (Database.wal primary) follower

(* Force the primary's tail stable, ship everything, and require equal
   horizons and equal logical state digests. *)
let converged ctx primary follower =
  Wal.force (Database.wal primary) (Wal.last_lsn (Database.wal primary));
  ignore (ship primary follower);
  Alcotest.(check int)
    (ctx ^ ": equal replicated LSN")
    (Database.replicated_lsn primary)
    (Database.replicated_lsn follower);
  Alcotest.(check string)
    (ctx ^ ": equal state digest")
    (Database.state_digest primary)
    (Database.state_digest follower)

(* --- smoke: workload, ship, read on the replica --------------------------- *)

let smoke_spec =
  {
    Workload.default with
    seed = 11;
    mpl = 4;
    txns_per_worker = 8;
    ops_per_txn = 3;
    delete_fraction = 0.15;
    n_groups = 6;
    theta = 0.8;
    initial_rows = 30;
    n_views = 1;
    strategy = Maintain.Escrow;
    config =
      { Workload.default.Workload.config with Database.pool_capacity = 16 };
  }

let test_ship_smoke () =
  let spec = smoke_spec in
  let db, sales, views = Workload.setup spec in
  ignore (Workload.run_on db sales views spec);
  let f = Database.create_follower ~config:spec.Workload.config () in
  converged "smoke" db f;
  Alcotest.(check bool) "follower view satisfies V1" true
    (Workload.check_consistency f (Database.view f "sales_by_product_0"));
  (* replica reads: lock-free snapshot at the applied horizon *)
  let m = Database.metrics f in
  let locks0 = Metrics.get m "lock.acquire" in
  let appends0 = Metrics.get m "log.append" in
  let vf = Database.view f "sales_by_product_0" in
  let sf = Database.table f "sales" in
  let n_rows, n_groups =
    Database.transact f ~read_only:true (fun tx ->
        ( Seq.length (Query.table_scan f (Some tx) sf Query.Serializable),
          Seq.length (Query.view_scan f (Some tx) vf Query.Serializable) ))
  in
  Alcotest.(check bool) "replica serves rows" true (n_rows > 0);
  Alcotest.(check bool) "replica serves view groups" true (n_groups > 0);
  Alcotest.(check int) "zero lock traffic for follower reads" 0
    (Metrics.get m "lock.acquire" - locks0);
  Alcotest.(check int) "zero WAL appends for follower reads" 0
    (Metrics.get m "log.append" - appends0)

let prop_converges_across_seeds =
  QCheck.Test.make ~name:"replica converges across seeds and batch sizes"
    ~count:6
    QCheck.(pair (int_bound 999) (int_range 1 64))
    (fun (s, batch) ->
      let spec = { smoke_spec with Workload.seed = s; txns_per_worker = 4 } in
      let db, sales, views = Workload.setup spec in
      ignore (Workload.run_on db sales views spec);
      let f = Database.create_follower ~config:spec.Workload.config () in
      Wal.force (Database.wal db) (Wal.last_lsn (Database.wal db));
      ignore (ship ~batch db f);
      Database.replicated_lsn db = Database.replicated_lsn f
      && Database.state_digest db = Database.state_digest f)

(* --- role enforcement ------------------------------------------------------ *)

let test_write_rejection () =
  let f = Database.create_follower () in
  Alcotest.(check bool) "is_follower" true (Database.is_follower f);
  let rejected g = try g () ; false with Database.Read_only_replica -> true in
  Alcotest.(check bool) "transact rejected" true
    (rejected (fun () -> Database.transact f (fun _ -> ())));
  Alcotest.(check bool) "transact_result rejected" true
    (rejected (fun () -> ignore (Database.transact_result f (fun _ -> ()))));
  Alcotest.(check bool) "create_table rejected" true
    (rejected (fun () ->
         ignore
           (Database.create_table f ~name:"t"
              ~cols:[ { Schema.name = "id"; ty = Value.TInt; nullable = false } ])));
  Alcotest.(check bool) "checkpoint rejected" true
    (rejected (fun () -> Database.checkpoint f));
  Alcotest.(check int) "gc is a no-op" 0 (Database.gc f);
  (* snapshot reads stay open *)
  Alcotest.(check int) "read-only transact allowed" 42
    (Database.transact f ~read_only:true (fun _ -> 42))

let test_resume_below_retention () =
  let config =
    { Database.default_config with read_cost = 0; write_cost = 0 }
  in
  let db = Database.create ~config () in
  let sales =
    Database.create_table db ~name:"t"
      ~cols:[ { Schema.name = "id"; ty = Value.TInt; nullable = false } ]
  in
  for i = 1 to 5 do
    Database.transact db (fun tx ->
        ignore (Table.insert db tx sales [| Value.Int i |]))
  done;
  (* no replication slot: the checkpoint truncates freely *)
  Database.checkpoint db;
  Alcotest.(check bool) "log was truncated" true
    (Wal.first_lsn (Database.wal db) > 1);
  let f = Database.create_follower ~config () in
  let refused = try ignore (ship db f); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "subscribing below retention is refused" true refused

(* --- torn shipped batches -------------------------------------------------- *)

(* Cut a serialized batch at EVERY byte offset: decode_frames must yield
   exactly a dense prefix (never garbage, never an exception), and a
   follower that applied the prefix must converge once the remainder is
   re-shipped — the reconnect path after a torn ReplRecords payload. *)
let test_torn_batch () =
  let config =
    { Database.default_config with read_cost = 0; write_cost = 0 }
  in
  let db = Database.create ~config () in
  let sales =
    Database.create_table db ~name:"sales"
      ~cols:
        [
          { Schema.name = "id"; ty = Value.TInt; nullable = false };
          { Schema.name = "product"; ty = Value.TInt; nullable = false };
          { Schema.name = "qty"; ty = Value.TInt; nullable = false };
        ]
  in
  let schema = Database.schema db sales in
  ignore
    (Database.create_view db ~name:"by_product" ~group_by:[ "product" ]
       ~aggs:[ View_def.Count_star; View_def.Sum (Expr.col schema "qty") ]
       ~source:(Database.From (sales, None))
       ~strategy:Maintain.Escrow ());
  for i = 1 to 8 do
    Database.transact db (fun tx ->
        ignore
          (Table.insert db tx sales
             [| Value.Int i; Value.Int (i mod 3); Value.Int i |]))
  done;
  let wal = Database.wal db in
  Wal.force wal (Wal.last_lsn wal);
  let n = Wal.flushed_lsn wal in
  let bytes = Wal.serialize_range wal ~from:1 ~upto:n in
  let len = String.length bytes in
  for cut = 0 to len do
    let records = Wal.decode_frames ~first_lsn:1 (String.sub bytes 0 cut) in
    let k = List.length records in
    if k > n then Alcotest.failf "cut %d: decoded beyond the stream" cut;
    List.iteri
      (fun i (r : Log_record.t) ->
        if r.Log_record.lsn <> i + 1 then
          Alcotest.failf "cut %d: LSN chain broken at %d" cut i)
      records;
    if cut = len && k <> n then
      Alcotest.failf "full stream decoded %d of %d records" k n;
    if cut mod 13 = 0 || cut = len then begin
      let f = Database.create_follower ~config () in
      Database.apply_replicated f records;
      Alcotest.(check int)
        (Printf.sprintf "cut %d: received = decoded" cut)
        k (Database.received_lsn f);
      Alcotest.(check int)
        (Printf.sprintf "cut %d: applied = commit horizon of the prefix" cut)
        (Wal.commit_horizon_upto wal ~upto:k)
        (Database.replicated_lsn f);
      converged (Printf.sprintf "cut %d" cut) db f
    end
  done

(* --- follower crash mid-stream --------------------------------------------- *)

let test_follower_restart () =
  let spec = smoke_spec in
  let db, sales, views = Workload.setup spec in
  ignore (Workload.run_on db sales views spec);
  Wal.force (Database.wal db) (Wal.last_lsn (Database.wal db));
  let total = Wal.flushed_lsn (Database.wal db) in
  List.iter
    (fun k ->
      let cut = total * k / 5 in
      let horizon = Wal.commit_horizon_upto (Database.wal db) ~upto:cut in
      let f = Database.create_follower ~config:spec.Workload.config () in
      ignore (ship ~upto:cut db f);
      Alcotest.(check int)
        (Printf.sprintf "cut %d/%d applies up to its commit horizon" cut total)
        horizon (Database.replicated_lsn f);
      let f = Database.crash f in
      Alcotest.(check bool) "restart keeps the role" true (Database.is_follower f);
      (* the buffered post-horizon tail is volatile: restart resumes at the
         durably applied commit horizon, never past it *)
      Alcotest.(check int)
        (Printf.sprintf "restart at %d/%d keeps the applied horizon" cut total)
        horizon (Database.replicated_lsn f);
      converged (Printf.sprintf "after restart at %d/%d" cut total) db f;
      Alcotest.(check bool) "restarted replica satisfies V1" true
        (Workload.check_consistency f (Database.view f "sales_by_product_0")))
    [ 1; 2; 3; 4 ]

(* --- commit horizon: no split transactions on the replica ------------------- *)

(* Two interleaved writers each insert a matched pair of rows (one in [a],
   one in [b]) per transaction, so commit records regularly land while the
   other transaction is still open — raw log prefixes are NOT
   transaction-consistent there. Shipping record by record, a snapshot
   read on the follower must never see a pair split: the gate pins the
   applied horizon to the last commit boundary of whatever arrived, and
   the boundary the follower computes must equal the primary's
   [commit_horizon_upto] over the same prefix. *)
let test_no_split_transactions () =
  let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
  let db = Database.create ~config () in
  let ta =
    Database.create_table db ~name:"a"
      ~cols:[ { Schema.name = "id"; ty = Value.TInt; nullable = false } ]
  in
  let tb =
    Database.create_table db ~name:"b"
      ~cols:[ { Schema.name = "id"; ty = Value.TInt; nullable = false } ]
  in
  Sched.run ~seed:13 (fun () ->
      for w = 0 to 1 do
        ignore
          (Sched.spawn (fun () ->
               for i = 1 to 6 do
                 Database.transact db (fun tx ->
                     ignore
                       (Table.insert db tx ta [| Value.Int ((100 * w) + i) |]);
                     Sched.yield ();
                     ignore
                       (Table.insert db tx tb [| Value.Int ((100 * w) + i) |]);
                     Sched.yield ())
               done))
      done);
  let wal = Database.wal db in
  Wal.force wal (Wal.last_lsn wal);
  let f = Database.create_follower ~config () in
  let count d name =
    match Database.table d name with
    | tbl ->
        Database.transact d ~read_only:true (fun tx ->
            Seq.length (Query.table_scan d (Some tx) tbl Query.Serializable))
    | exception _ -> 0
  in
  let split = ref 0 and gated = ref 0 in
  for lsn = 1 to Wal.flushed_lsn wal do
    ignore (ship ~batch:1 ~upto:lsn db f);
    Alcotest.(check int)
      (Printf.sprintf "lsn %d: applied = commit horizon of the prefix" lsn)
      (Wal.commit_horizon_upto wal ~upto:lsn)
      (Database.replicated_lsn f);
    if Database.replicated_lsn f < lsn then incr gated;
    if count f "a" <> count f "b" then incr split
  done;
  Alcotest.(check int) "no prefix ever shows a split transaction" 0 !split;
  Alcotest.(check bool) "the gate actually engaged mid-transaction" true
    (!gated > 0);
  converged "record-by-record shipping" db f

(* --- crash-the-primary sweep ----------------------------------------------- *)

(* A workload with a continuously-streaming follower fiber: the shipper
   observes the stable horizon between other fibers' steps, ships it, and
   advances the slot's retention floor to its ack — exactly the server's
   subscription lifecycle. Determinism makes the force sweep exhaustive:
   the counting run and every armed run interleave identically up to the
   trigger. *)
let sweep_spec =
  {
    Workload.default with
    seed = 7;
    mpl = 3;
    txns_per_worker = 3;
    ops_per_txn = 3;
    delete_fraction = 0.;
    n_groups = 5;
    theta = 0.8;
    initial_rows = 20;
    n_views = 1;
    strategy = Maintain.Escrow;
    config =
      { Workload.default.Workload.config with Database.pool_capacity = 8 };
  }

let ckpt_every = 3

let run_replicated_until_crash spec fcfg =
  let db, sales, _views = Workload.setup spec in
  let f = Database.create_follower ~config:spec.Workload.config () in
  Wal.set_retain_floor (Database.wal db) (Some 1);
  Database.install_fault db fcfg;
  let seed = spec.Workload.seed in
  let committed = ref 0 in
  let crashed = ref false in
  (try
     Sched.run ~seed (fun () ->
         let remaining = ref spec.Workload.mpl in
         let running = ref true in
         let wake_main = ref (fun () -> ()) in
         ignore
           (Sched.spawn (fun () ->
                while !running do
                  ignore (ship ~batch:16 db f);
                  Wal.set_retain_floor (Database.wal db)
                    (Some (Database.replicated_lsn f + 1));
                  Sched.yield ()
                done));
         for w = 1 to spec.Workload.mpl do
           ignore
             (Sched.spawn (fun () ->
                  Fun.protect
                    ~finally:(fun () ->
                      decr remaining;
                      if !remaining = 0 then begin
                        running := false;
                        !wake_main ()
                      end)
                    (fun () ->
                      let rng = Rng.create ((seed * 131) + w) in
                      let next = ref (1000 * w) in
                      for _ = 1 to spec.Workload.txns_per_worker do
                        (try
                           Database.transact db (fun tx ->
                               for _ = 1 to spec.Workload.ops_per_txn do
                                 incr next;
                                 ignore
                                   (Table.insert db tx sales
                                      [|
                                        Value.Int !next;
                                        Value.Int (1 + Rng.int rng 5);
                                        Value.Int (1 + Rng.int rng 10);
                                        Value.Float 1.;
                                      |]);
                                 Sched.yield ()
                               done);
                           incr committed;
                           if !committed mod ckpt_every = 0 then
                             Database.checkpoint db
                         with Txn.Conflict _ -> ());
                        Sched.yield ()
                      done)))
         done;
         if !remaining > 0 then
           Sched.suspend (fun wake _cancel -> wake_main := wake))
   with Fault.Crash_point _ -> crashed := true);
  (db, f, !committed, !crashed)

let count_forces spec =
  let db, _f, committed, crashed =
    run_replicated_until_crash spec Fault.no_faults
  in
  Alcotest.(check bool) "counting run crashed" false crashed;
  Alcotest.(check bool) "counting run committed" true (committed > 0);
  Fault.forces_seen (Database.fault_plan db)

let run_sweep_point spec fcfg desc =
  let db, f, _committed, crashed = run_replicated_until_crash spec fcfg in
  if not crashed then
    Alcotest.failf "%s: armed trigger did not fire (sweep out of sync)" desc;
  (* the slot is durable state: pin it to the follower's ack so recovery's
     checkpoint cannot truncate records the replica still needs (the CLRs
     it is about to append among them) *)
  Wal.set_retain_floor (Database.wal db)
    (Some (Database.replicated_lsn f + 1));
  let db' = Database.crash db in
  converged desc db' f;
  Alcotest.(check bool) (desc ^ ": replica view satisfies V1") true
    (Workload.check_consistency f (Database.view f "sales_by_product_0"))

(* --- heap growth under physical redo --------------------------------------- *)

(* Enough preloaded rows to span several heap pages: physical redo on the
   follower must adopt pages appended past each handle's cached tail
   (Heap_file.refresh), or the replica digest silently misses the chain's
   suffix. Regression test for exactly that bug. *)
let test_heap_growth () =
  let spec =
    { smoke_spec with Workload.seed = 5; initial_rows = 400; txns_per_worker = 2 }
  in
  let db, sales, views = Workload.setup spec in
  ignore (Workload.run_on db sales views spec);
  let f = Database.create_follower ~config:spec.Workload.config () in
  converged "heap growth" db f;
  let count d =
    Database.transact d ~read_only:true (fun tx ->
        Seq.length
          (Query.table_scan d (Some tx) (Database.table d "sales")
             Query.Serializable))
  in
  (* ~195 sales rows fit a page: 400 preloaded rows guarantee the chain
     grew past the follower handles' attach-time tails *)
  Alcotest.(check bool) "rows span multiple pages" true (count db >= 300);
  Alcotest.(check int) "equal row counts" (count db) (count f)

(* --- wire-level: server, replica driver, clients ---------------------------- *)

module Server = Ivdb_server.Server
module Replica = Ivdb_server.Replica
module Client = Ivdb_client.Client
module Transport = Ivdb_transport.Transport
module Wire = Ivdb_wire.Wire
module Sql = Ivdb_sql.Sql

let rows = function
  | Sql.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected Rows"

let cell_str (r : Ivdb_relation.Row.t) i =
  match r.(i) with Value.Str s -> s | _ -> Alcotest.fail "expected Str cell"

let server_error code f =
  try
    ignore (f ());
    false
  with Client.Server_error { code = c; _ } -> c = code

(* Full deployment over loopback transports: a primary server with SQL
   clients, a follower database fed by the Replica driver, and a SECOND
   server fronting the follower for read-only SQL. Asserts the redesigned
   surfaces end to end: streaming catch-up, E_read_only over the wire,
   snapshot SELECTs on the follower, sys.replication on both roles, and
   slot reuse when a replica reconnects under the same name. *)
let test_wire_replication () =
  let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
  let db = Database.create ~config () in
  let fdb = Database.create_follower ~config () in
  let caught_up () =
    while Database.replicated_lsn fdb < Wal.flushed_lsn (Database.wal db) do
      Sched.yield ()
    done
  in
  Sched.run ~seed:7 (fun () ->
      let pnet = Transport.Loopback.create ~backlog:16 () in
      let fnet = Transport.Loopback.create ~backlog:16 () in
      let psrv = Server.create db (Transport.Loopback.listener pnet) in
      Server.serve psrv;
      let r1 = Replica.create ~name:"netfollower" fdb (Transport.Loopback.dialer pnet) in
      let fsrv = Server.create fdb (Transport.Loopback.listener fnet) in
      Server.attach_replica fsrv r1;
      Server.serve fsrv;
      Replica.spawn r1;
      (* primary takes writes while the follower streams *)
      let pcl = Client.connect ~client:"writer" (Transport.Loopback.dialer pnet) in
      ignore (Client.exec pcl "CREATE TABLE t (a INT NOT NULL, b TEXT)");
      ignore (Client.exec pcl "INSERT INTO t VALUES (1, 'x'), (2, 'y')");
      caught_up ();
      Alcotest.(check bool) "driver is streaming" true
        (Replica.status r1 = Replica.Streaming);
      (* follower serves snapshot reads over the wire, rejects writes *)
      let fcl = Client.connect ~client:"reader" (Transport.Loopback.dialer fnet) in
      Alcotest.(check int) "follower serves the replicated rows" 2
        (List.length (rows (Client.exec fcl "SELECT a, b FROM t ORDER BY a")));
      Alcotest.(check bool) "INSERT on follower is E_read_only" true
        (server_error Wire.E_read_only (fun () ->
             Client.exec fcl "INSERT INTO t VALUES (3, 'z')"));
      Alcotest.(check bool) "BEGIN on follower is E_read_only" true
        (server_error Wire.E_read_only (fun () -> Client.exec fcl "BEGIN"));
      ignore (Client.exec fcl "BEGIN READ ONLY");
      Alcotest.(check int) "snapshot SELECT inside BEGIN READ ONLY" 2
        (List.length (rows (Client.exec fcl "SELECT a FROM t")));
      ignore (Client.exec fcl "COMMIT");
      (* sys.replication reflects the role on each side *)
      let prow =
        match rows (Client.exec pcl "SELECT * FROM sys.replication") with
        | [ r ] -> r
        | rs -> Alcotest.failf "primary: %d replication rows" (List.length rs)
      in
      Alcotest.(check string) "primary role" "primary" (cell_str prow 0);
      Alcotest.(check string) "primary peer is the slot name" "netfollower"
        (cell_str prow 1);
      Alcotest.(check string) "slot is streaming" "streaming" (cell_str prow 2);
      let frow =
        match rows (Client.exec fcl "SELECT * FROM sys.replication") with
        | [ r ] -> r
        | rs -> Alcotest.failf "follower: %d replication rows" (List.length rs)
      in
      Alcotest.(check string) "follower role" "follower" (cell_str frow 0);
      Alcotest.(check string) "follower streaming" "streaming" (cell_str frow 2);
      (* reconnect under the same name: the durable slot is reused, the
         new driver resumes from the follower's applied horizon *)
      Replica.stop r1;
      while Replica.status r1 <> Replica.Stopped do
        Sched.yield ()
      done;
      ignore (Client.exec pcl "INSERT INTO t VALUES (3, 'z')");
      let r2 = Replica.create ~name:"netfollower" fdb (Transport.Loopback.dialer pnet) in
      Server.attach_replica fsrv r2;
      Replica.spawn r2;
      caught_up ();
      Alcotest.(check int) "rows after resubscribe" 3
        (List.length (rows (Client.exec fcl "SELECT a FROM t")));
      (match Server.replicas psrv with
      | [ (name, acked, connected) ] ->
          Alcotest.(check string) "one durable slot" "netfollower" name;
          Alcotest.(check bool) "slot reconnected" true connected;
          Alcotest.(check int) "slot acked the full log" acked
            (Wal.flushed_lsn (Database.wal db))
      | rs -> Alcotest.failf "%d replication slots" (List.length rs));
      Client.close pcl;
      Client.close fcl;
      (* drivers must stop BEFORE the listener: a dialing replica retries
         against a drained loopback forever and the run never terminates *)
      Replica.stop r2;
      Server.drain fsrv;
      Server.drain psrv);
  Alcotest.(check string) "wire-replicated digest matches"
    (Database.state_digest db) (Database.state_digest fdb)

(* A fresh follower whose subscribe position predates the primary's
   retained log is refused with [Err E_repl]: the driver must treat that
   as fatal (stop, surface the error) rather than redialling forever. *)
let test_wire_subscribe_refused () =
  let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
  let db = Database.create ~config () in
  let t =
    Database.create_table db ~name:"t"
      ~cols:[ { Schema.name = "id"; ty = Value.TInt; nullable = false } ]
  in
  for i = 1 to 5 do
    Database.transact db (fun tx -> ignore (Table.insert db tx t [| Value.Int i |]))
  done;
  (* no slots yet: the checkpoint truncates the log freely *)
  Database.checkpoint db;
  Alcotest.(check bool) "log truncated" true (Wal.first_lsn (Database.wal db) > 1);
  let fdb = Database.create_follower ~config () in
  Sched.run ~seed:3 (fun () ->
      let net = Transport.Loopback.create ~backlog:4 () in
      let srv = Server.create db (Transport.Loopback.listener net) in
      Server.serve srv;
      let r = Replica.create ~name:"late" fdb (Transport.Loopback.dialer net) in
      Replica.spawn r;
      while Replica.status r <> Replica.Stopped do
        Sched.yield ()
      done;
      Alcotest.(check bool) "driver surfaced the refusal" true
        (Replica.last_error r <> None);
      Alcotest.(check int) "nothing was applied" 0 (Database.replicated_lsn fdb);
      Server.drain srv)

(* Full failover over loopback: the primary dies mid-deployment, an admin
   [Promote] frame turns the follower's server into the new primary, the
   SQL client repoints, a second replica repoints its driver at the
   promoted node, and sys.replication shows the role transition. *)
let test_wire_failover () =
  let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
  let db = Database.create ~config () in
  let fdb = Database.create_follower ~config () in
  Sched.run ~seed:21 (fun () ->
      let pnet = Transport.Loopback.create ~backlog:16 () in
      let fnet = Transport.Loopback.create ~backlog:16 () in
      let psrv = Server.create db (Transport.Loopback.listener pnet) in
      Server.serve psrv;
      let r = Replica.create ~name:"standby" fdb (Transport.Loopback.dialer pnet) in
      let fsrv = Server.create fdb (Transport.Loopback.listener fnet) in
      Server.attach_replica fsrv r;
      Server.serve fsrv;
      Replica.spawn r;
      let pcl = Client.connect ~client:"app" (Transport.Loopback.dialer pnet) in
      ignore (Client.exec pcl "CREATE TABLE t (a INT NOT NULL)");
      ignore (Client.exec pcl "INSERT INTO t VALUES (1), (2)");
      while Database.replicated_lsn fdb < Wal.flushed_lsn (Database.wal db) do
        Sched.yield ()
      done;
      let fcl = Client.connect ~client:"admin" (Transport.Loopback.dialer fnet) in
      Alcotest.(check bool) "Promote on the primary is E_repl" true
        (server_error Wire.E_repl (fun () -> Client.promote pcl));
      (* the primary dies *)
      Server.drain psrv;
      (* an admin promotes the follower over the wire *)
      let msg = Client.promote fcl in
      Alcotest.(check bool) "promotion reported" true (String.length msg > 0);
      Alcotest.(check bool) "promotion stopped the driver" true
        (Replica.status r = Replica.Stopped);
      Alcotest.(check bool) "follower became primary" false
        (Database.is_follower fdb);
      (* sys.replication flipped from the follower row to the primary's
         slot rows (none yet: nothing has subscribed to the new primary) *)
      List.iter
        (fun row ->
          Alcotest.(check string) "post-promotion role" "primary"
            (cell_str row 0))
        (rows (Client.exec fcl "SELECT * FROM sys.replication"));
      (* the application client repoints and writes to the new primary *)
      Client.repoint pcl (Transport.Loopback.dialer fnet);
      ignore (Client.exec pcl "INSERT INTO t VALUES (3)");
      Alcotest.(check int) "promoted primary serves the write" 3
        (List.length (rows (Client.exec pcl "SELECT a FROM t ORDER BY a")));
      (* a second replica still dialling the dead primary repoints its
         driver and converges against the promoted node — whose promotion
         checkpoint kept the log it needs *)
      let fdb2 = Database.create_follower ~config () in
      let r2 =
        Replica.create ~name:"standby2" fdb2 (Transport.Loopback.dialer pnet)
      in
      Replica.spawn r2;
      for _ = 1 to 5 do
        Sched.yield ()
      done;
      Replica.repoint r2 (Transport.Loopback.dialer fnet);
      while Database.replicated_lsn fdb2 < Wal.flushed_lsn (Database.wal fdb) do
        Sched.yield ()
      done;
      Alcotest.(check string) "repointed replica converges"
        (Database.state_digest fdb) (Database.state_digest fdb2);
      Alcotest.(check bool) "second Promote is E_repl" true
        (server_error Wire.E_repl (fun () -> Client.promote fcl));
      Client.close pcl;
      Client.close fcl;
      Replica.stop r2;
      Server.drain fsrv)

(* A detached replica's durable slot pins WAL retention forever unless an
   operator drops it: [DropSlot] forgets the slot and recomputes the
   retain floor so checkpoint truncation resumes. Unknown and
   still-connected slots are refused. *)
let test_wire_drop_slot () =
  let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
  let db = Database.create ~config () in
  let t =
    Database.create_table db ~name:"t"
      ~cols:[ { Schema.name = "id"; ty = Value.TInt; nullable = false } ]
  in
  let fdb = Database.create_follower ~config () in
  Sched.run ~seed:5 (fun () ->
      let net = Transport.Loopback.create ~backlog:8 () in
      let srv = Server.create db (Transport.Loopback.listener net) in
      Server.serve srv;
      let cl = Client.connect ~client:"admin" (Transport.Loopback.dialer net) in
      let r = Replica.create ~name:"gone" fdb (Transport.Loopback.dialer net) in
      Replica.spawn r;
      let insert i =
        Database.transact db (fun tx ->
            ignore (Table.insert db tx t [| Value.Int i |]))
      in
      insert 1;
      while Database.replicated_lsn fdb < Wal.flushed_lsn (Database.wal db) do
        Sched.yield ()
      done;
      Alcotest.(check bool) "dropping a live slot is refused" true
        (server_error Wire.E_repl (fun () -> Client.drop_slot cl "gone"));
      Alcotest.(check bool) "dropping an unknown slot is refused" true
        (server_error Wire.E_repl (fun () -> Client.drop_slot cl "nope"));
      (* the replica detaches for good; its slot keeps pinning the log *)
      Replica.stop r;
      while Replica.status r <> Replica.Stopped do
        Sched.yield ()
      done;
      let acked = Database.replicated_lsn fdb in
      for i = 2 to 9 do
        insert i
      done;
      (* the new records kick the caught-up stream fiber: it ships to the
         dead connection, observes the EOF, and marks the slot detached —
         until then a drop racing the disconnect is (correctly) refused *)
      let rec wait_detached () =
        match Server.replicas srv with
        | [ (_, _, false) ] -> ()
        | _ ->
            Sched.yield ();
            wait_detached ()
      in
      wait_detached ();
      Database.checkpoint db;
      Alcotest.(check bool) "detached slot pins retention" true
        (Wal.first_lsn (Database.wal db) <= acked + 1);
      let msg = Client.drop_slot cl "gone" in
      Alcotest.(check bool) "drop acknowledged" true (String.length msg > 0);
      Alcotest.(check (list (triple string int bool))) "no slots survive" []
        (Server.replicas srv);
      for i = 10 to 12 do
        insert i
      done;
      Database.checkpoint db;
      Alcotest.(check bool) "truncation resumed past the dropped slot" true
        (Wal.first_lsn (Database.wal db) > acked + 1);
      Client.close cl;
      Server.drain srv)

(* Regression: the redial backoff must reset once a session delivers a
   batch. Before the fix it compounded across the driver's whole
   lifetime, so a replica that streamed healthily for a long uptime and
   then hiccuped once redialled at the 64-tick cap instead of instantly.
   A scripted primary fails a burst of sessions (backoff climbs), serves
   one delivering session, then fails again — the next redial must be
   prompt. *)
let test_backoff_reset () =
  let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
  let db = Database.create ~config () in
  let t =
    Database.create_table db ~name:"t"
      ~cols:[ { Schema.name = "id"; ty = Value.TInt; nullable = false } ]
  in
  for i = 1 to 3 do
    Database.transact db (fun tx -> ignore (Table.insert db tx t [| Value.Int i |]))
  done;
  let wal = Database.wal db in
  Wal.force wal (Wal.last_lsn wal);
  let n = Wal.flushed_lsn wal in
  let fdb = Database.create_follower ~config () in
  Sched.run ~seed:9 (fun () ->
      let net = Transport.Loopback.create ~backlog:16 () in
      let lst = Transport.Loopback.listener net in
      let failures = ref 0 in
      let healthy_done = ref false in
      let healthy_close_tick = ref 0 in
      let first_fail_tick = ref (-1) in
      let mode = ref `Fail in
      let serve_one conn =
        match !mode with
        | `Fail ->
            incr failures;
            if !healthy_done && !first_fail_tick < 0 then
              first_fail_tick := Sched.now ();
            conn.Transport.close ()
        | `Healthy ->
            let io = Transport.Frame_io.create conn in
            (match Transport.Frame_io.recv io with
            | Some (Wire.Hello _) -> (
                Transport.Frame_io.send io
                  (Wire.Welcome
                     { version = Wire.version; server = "fake"; session = 1 });
                match Transport.Frame_io.recv io with
                | Some (Wire.ReplSubscribe { from; _ }) when from <= n ->
                    let payload = Wal.serialize_range wal ~from ~upto:n in
                    Transport.Frame_io.send io
                      (Wire.ReplRecords
                         {
                           first = from;
                           upto = n;
                           committed = Wal.commit_horizon wal;
                           flushed = n;
                           payload;
                         });
                    ignore (Transport.Frame_io.recv io);
                    (* one-shot: flip back to failing before the replica
                       can redial, so exactly one session delivers *)
                    mode := `Fail;
                    healthy_close_tick := Sched.now ();
                    healthy_done := true;
                    conn.Transport.close ()
                | _ ->
                    mode := `Fail;
                    healthy_close_tick := Sched.now ();
                    healthy_done := true;
                    conn.Transport.close ())
            | _ -> conn.Transport.close ())
      in
      let stop_accept = ref false in
      ignore
        (Sched.spawn (fun () ->
             while not !stop_accept do
               (match lst.Transport.accept () with
               | Some conn -> serve_one conn
               | None -> ());
               Sched.yield ()
             done));
      let r = Replica.create ~name:"flaky" fdb (Transport.Loopback.dialer net) in
      Replica.spawn r;
      (* a burst of dead sessions: the backoff climbs toward the cap *)
      while !failures < 6 do
        Sched.yield ()
      done;
      Alcotest.(check bool)
        (Printf.sprintf "backoff climbed after %d failed sessions (got %d)"
           !failures (Replica.backoff r))
        true
        (Replica.backoff r >= 16);
      (* one healthy session delivers a batch... *)
      mode := `Healthy;
      while not !healthy_done do
        Sched.yield ()
      done;
      Alcotest.(check int) "the batch was applied" n
        (Database.replicated_lsn fdb);
      (* ...and the next hiccup redials promptly: the gap between the
         healthy session's close and the next (failing) dial is a couple
         of scheduler cycles, not the compounded 64-tick cap the driver
         had accumulated before the reset *)
      while !first_fail_tick < 0 do
        Sched.yield ()
      done;
      let gap = !first_fail_tick - !healthy_close_tick in
      Alcotest.(check bool)
        (Printf.sprintf "prompt redial after a delivering session (%d ticks)"
           gap)
        true
        (gap >= 0 && gap < 32);
      Replica.stop r;
      while Replica.status r <> Replica.Stopped do
        Sched.yield ()
      done;
      stop_accept := true;
      lst.Transport.stop ())

let sweep_crash_primary () =
  let spec = sweep_spec in
  let n_forces = count_forces spec in
  Alcotest.(check bool) "workload has force points" true (n_forces > 0);
  for k = 1 to n_forces do
    run_sweep_point spec
      { Fault.no_faults with crash_at_force = Some k }
      (Printf.sprintf "clean primary crash at force %d" k);
    run_sweep_point spec
      { Fault.no_faults with crash_at_force = Some k; torn_tail = true }
      (Printf.sprintf "torn primary crash at force %d" k)
  done

(* --- failover: promote the follower at every primary crash point ------------ *)

(* At every force point of the replicated workload, clean and torn: the
   primary dies, the follower final-ships the remainder of the dead log's
   SURVIVING image (Wal.crash applies the pending tear, so a torn force's
   lost bytes never reach the follower), promotes, and must land on
   exactly the state single-node crash recovery reaches over the same
   prefix — no committed transaction lost, every in-flight one rolled
   back by the promotion's undo pass. The promoted database must then
   serve writes and checkpoints. *)
let run_promote_point spec fcfg desc =
  let db, f, _committed, crashed = run_replicated_until_crash spec fcfg in
  if not crashed then
    Alcotest.failf "%s: armed trigger did not fire (sweep out of sync)" desc;
  let dead = Wal.crash (Database.wal db) (Metrics.create ()) in
  ignore (ship_wal dead f);
  let promo = Database.promote f in
  Alcotest.(check bool) (desc ^ ": promoted out of the follower role") false
    (Database.is_follower f);
  (* reference: single-node crash recovery over the same surviving log *)
  let db' = Database.crash db in
  Alcotest.(check string)
    (desc ^ ": promotion = single-node recovery of the same log")
    (Database.state_digest db')
    (Database.state_digest f);
  Alcotest.(check bool) (desc ^ ": promoted view satisfies V1") true
    (Workload.check_consistency f (Database.view f "sales_by_product_0"));
  (* the promoted primary is open for business *)
  let sales = Database.table f "sales" in
  Database.transact f (fun tx ->
      ignore
        (Table.insert f tx sales
           [| Value.Int 999_999; Value.Int 1; Value.Int 1; Value.Float 1. |]));
  Database.checkpoint f;
  promo

let sweep_promote_follower () =
  let spec = sweep_spec in
  let n_forces = count_forces spec in
  Alcotest.(check bool) "workload has force points" true (n_forces > 0);
  let undone = ref 0 in
  for k = 1 to n_forces do
    let p =
      run_promote_point spec
        { Fault.no_faults with crash_at_force = Some k }
        (Printf.sprintf "promote after clean crash at force %d" k)
    in
    undone := !undone + p.Database.losers_undone;
    let p =
      run_promote_point spec
        { Fault.no_faults with crash_at_force = Some k; torn_tail = true }
        (Printf.sprintf "promote after torn crash at force %d" k)
    in
    undone := !undone + p.Database.losers_undone
  done;
  Alcotest.(check bool) "some crash points left losers to roll back" true
    (!undone > 0)

let () =
  Alcotest.run "repl"
    [
      ( "shipping",
        [
          Alcotest.test_case "workload ships and replica serves reads" `Quick
            test_ship_smoke;
          Alcotest.test_case "resume below retention is refused" `Quick
            test_resume_below_retention;
          qtest prop_converges_across_seeds;
        ] );
      ( "roles",
        [ Alcotest.test_case "follower rejects writes" `Quick test_write_rejection ] );
      ( "redo",
        [
          Alcotest.test_case "heap chain growth under physical redo" `Quick
            test_heap_growth;
        ] );
      ( "horizon",
        [
          Alcotest.test_case "no split transactions on the replica" `Quick
            test_no_split_transactions;
        ] );
      ( "wire",
        [
          Alcotest.test_case "end-to-end replication over loopback" `Quick
            test_wire_replication;
          Alcotest.test_case "subscribe below retention is fatal" `Quick
            test_wire_subscribe_refused;
          Alcotest.test_case "failover: promote, repoint, converge" `Quick
            test_wire_failover;
          Alcotest.test_case "drop a detached slot, truncation resumes" `Quick
            test_wire_drop_slot;
          Alcotest.test_case "redial backoff resets after delivery" `Quick
            test_backoff_reset;
        ] );
      ( "faults",
        [
          Alcotest.test_case "torn batch byte sweep" `Quick test_torn_batch;
          Alcotest.test_case "follower restart mid-stream" `Quick
            test_follower_restart;
          Alcotest.test_case "primary crash-at-force sweep" `Quick
            sweep_crash_primary;
          Alcotest.test_case "promote the follower at every crash point" `Quick
            sweep_promote_follower;
        ] );
    ]
