(* Replication by WAL shipping, exercised at the engine level.

   Properties:
   - a follower fed the primary's stable log — in any batch size, across
     seeds — converges to an identical logical state (tables AND views)
     at the same replicated LSN;
   - follower reads are lock-free snapshot reads (no lock-manager or WAL
     traffic), and the replica's views satisfy V1;
   - every local write path on a follower is rejected;
   - a torn shipped batch truncates to its longest dense prefix and
     re-shipping the remainder converges, at every byte cut;
   - a follower crash mid-stream recovers (no undo, no checkpoint) and
     resumes at its applied horizon;
   - the primary may crash at ANY force point (clean or torn tail) while
     a subscribed follower streams continuously; after recovery the
     follower resubscribes and converges to the recovered state.

   The shipping harness uses the same serialize_range / decode_frames
   framing the wire protocol carries, so the byte-level fault behavior
   here is exactly what a network follower sees. *)

module Database = Ivdb.Database
module Table = Ivdb.Table
module Query = Ivdb.Query
module Workload = Ivdb.Workload
module Wal = Ivdb_wal.Wal
module Log_record = Ivdb_wal.Log_record
module Fault = Ivdb_storage.Fault
module Txn = Ivdb_txn.Txn
module Sched = Ivdb_sched.Sched
module Rng = Ivdb_util.Rng
module Metrics = Ivdb_util.Metrics
module Value = Ivdb_relation.Value
module Schema = Ivdb_relation.Schema
module Expr = Ivdb_relation.Expr
module View_def = Ivdb_core.View_def
module Maintain = Ivdb_core.Maintain

let qtest = QCheck_alcotest.to_alcotest

(* --- shipping harness ----------------------------------------------------- *)

(* Stream stable records [replicated_lsn f + 1 .. upto] to the follower in
   batches of [batch] records, through the wire's framing (serialize,
   decode, apply). Returns the number of records shipped. *)
let ship ?(batch = 64) ?upto primary follower =
  let wal = Database.wal primary in
  let upto = match upto with Some u -> u | None -> Wal.flushed_lsn wal in
  let shipped = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let from = Database.replicated_lsn follower + 1 in
    let hi = min upto (from + batch - 1) in
    if hi < from then continue_ := false
    else begin
      let bytes = Wal.serialize_range wal ~from ~upto:hi in
      let records = Wal.decode_frames ~first_lsn:from bytes in
      if List.length records <> hi - from + 1 then
        Alcotest.failf "ship: batch [%d,%d] decoded short" from hi;
      Database.apply_replicated follower records;
      shipped := !shipped + List.length records
    end
  done;
  !shipped

(* Force the primary's tail stable, ship everything, and require equal
   horizons and equal logical state digests. *)
let converged ctx primary follower =
  Wal.force (Database.wal primary) (Wal.last_lsn (Database.wal primary));
  ignore (ship primary follower);
  Alcotest.(check int)
    (ctx ^ ": equal replicated LSN")
    (Database.replicated_lsn primary)
    (Database.replicated_lsn follower);
  Alcotest.(check string)
    (ctx ^ ": equal state digest")
    (Database.state_digest primary)
    (Database.state_digest follower)

(* --- smoke: workload, ship, read on the replica --------------------------- *)

let smoke_spec =
  {
    Workload.default with
    seed = 11;
    mpl = 4;
    txns_per_worker = 8;
    ops_per_txn = 3;
    delete_fraction = 0.15;
    n_groups = 6;
    theta = 0.8;
    initial_rows = 30;
    n_views = 1;
    strategy = Maintain.Escrow;
    config =
      { Workload.default.Workload.config with Database.pool_capacity = 16 };
  }

let test_ship_smoke () =
  let spec = smoke_spec in
  let db, sales, views = Workload.setup spec in
  ignore (Workload.run_on db sales views spec);
  let f = Database.create_follower ~config:spec.Workload.config () in
  converged "smoke" db f;
  Alcotest.(check bool) "follower view satisfies V1" true
    (Workload.check_consistency f (Database.view f "sales_by_product_0"));
  (* replica reads: lock-free snapshot at the applied horizon *)
  let m = Database.metrics f in
  let locks0 = Metrics.get m "lock.acquire" in
  let appends0 = Metrics.get m "log.append" in
  let vf = Database.view f "sales_by_product_0" in
  let sf = Database.table f "sales" in
  let n_rows, n_groups =
    Database.transact f ~read_only:true (fun tx ->
        ( Seq.length (Query.table_scan f (Some tx) sf Query.Serializable),
          Seq.length (Query.view_scan f (Some tx) vf Query.Serializable) ))
  in
  Alcotest.(check bool) "replica serves rows" true (n_rows > 0);
  Alcotest.(check bool) "replica serves view groups" true (n_groups > 0);
  Alcotest.(check int) "zero lock traffic for follower reads" 0
    (Metrics.get m "lock.acquire" - locks0);
  Alcotest.(check int) "zero WAL appends for follower reads" 0
    (Metrics.get m "log.append" - appends0)

let prop_converges_across_seeds =
  QCheck.Test.make ~name:"replica converges across seeds and batch sizes"
    ~count:6
    QCheck.(pair (int_bound 999) (int_range 1 64))
    (fun (s, batch) ->
      let spec = { smoke_spec with Workload.seed = s; txns_per_worker = 4 } in
      let db, sales, views = Workload.setup spec in
      ignore (Workload.run_on db sales views spec);
      let f = Database.create_follower ~config:spec.Workload.config () in
      Wal.force (Database.wal db) (Wal.last_lsn (Database.wal db));
      ignore (ship ~batch db f);
      Database.replicated_lsn db = Database.replicated_lsn f
      && Database.state_digest db = Database.state_digest f)

(* --- role enforcement ------------------------------------------------------ *)

let test_write_rejection () =
  let f = Database.create_follower () in
  Alcotest.(check bool) "is_follower" true (Database.is_follower f);
  let rejected g = try g () ; false with Database.Read_only_replica -> true in
  Alcotest.(check bool) "transact rejected" true
    (rejected (fun () -> Database.transact f (fun _ -> ())));
  Alcotest.(check bool) "transact_result rejected" true
    (rejected (fun () -> ignore (Database.transact_result f (fun _ -> ()))));
  Alcotest.(check bool) "create_table rejected" true
    (rejected (fun () ->
         ignore
           (Database.create_table f ~name:"t"
              ~cols:[ { Schema.name = "id"; ty = Value.TInt; nullable = false } ])));
  Alcotest.(check bool) "checkpoint rejected" true
    (rejected (fun () -> Database.checkpoint f));
  Alcotest.(check int) "gc is a no-op" 0 (Database.gc f);
  (* snapshot reads stay open *)
  Alcotest.(check int) "read-only transact allowed" 42
    (Database.transact f ~read_only:true (fun _ -> 42))

let test_resume_below_retention () =
  let config =
    { Database.default_config with read_cost = 0; write_cost = 0 }
  in
  let db = Database.create ~config () in
  let sales =
    Database.create_table db ~name:"t"
      ~cols:[ { Schema.name = "id"; ty = Value.TInt; nullable = false } ]
  in
  for i = 1 to 5 do
    Database.transact db (fun tx ->
        ignore (Table.insert db tx sales [| Value.Int i |]))
  done;
  (* no replication slot: the checkpoint truncates freely *)
  Database.checkpoint db;
  Alcotest.(check bool) "log was truncated" true
    (Wal.first_lsn (Database.wal db) > 1);
  let f = Database.create_follower ~config () in
  let refused = try ignore (ship db f); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "subscribing below retention is refused" true refused

(* --- torn shipped batches -------------------------------------------------- *)

(* Cut a serialized batch at EVERY byte offset: decode_frames must yield
   exactly a dense prefix (never garbage, never an exception), and a
   follower that applied the prefix must converge once the remainder is
   re-shipped — the reconnect path after a torn ReplRecords payload. *)
let test_torn_batch () =
  let config =
    { Database.default_config with read_cost = 0; write_cost = 0 }
  in
  let db = Database.create ~config () in
  let sales =
    Database.create_table db ~name:"sales"
      ~cols:
        [
          { Schema.name = "id"; ty = Value.TInt; nullable = false };
          { Schema.name = "product"; ty = Value.TInt; nullable = false };
          { Schema.name = "qty"; ty = Value.TInt; nullable = false };
        ]
  in
  let schema = Database.schema db sales in
  ignore
    (Database.create_view db ~name:"by_product" ~group_by:[ "product" ]
       ~aggs:[ View_def.Count_star; View_def.Sum (Expr.col schema "qty") ]
       ~source:(Database.From (sales, None))
       ~strategy:Maintain.Escrow ());
  for i = 1 to 8 do
    Database.transact db (fun tx ->
        ignore
          (Table.insert db tx sales
             [| Value.Int i; Value.Int (i mod 3); Value.Int i |]))
  done;
  let wal = Database.wal db in
  Wal.force wal (Wal.last_lsn wal);
  let n = Wal.flushed_lsn wal in
  let bytes = Wal.serialize_range wal ~from:1 ~upto:n in
  let len = String.length bytes in
  for cut = 0 to len do
    let records = Wal.decode_frames ~first_lsn:1 (String.sub bytes 0 cut) in
    let k = List.length records in
    if k > n then Alcotest.failf "cut %d: decoded beyond the stream" cut;
    List.iteri
      (fun i (r : Log_record.t) ->
        if r.Log_record.lsn <> i + 1 then
          Alcotest.failf "cut %d: LSN chain broken at %d" cut i)
      records;
    if cut = len && k <> n then
      Alcotest.failf "full stream decoded %d of %d records" k n;
    if cut mod 13 = 0 || cut = len then begin
      let f = Database.create_follower ~config () in
      Database.apply_replicated f records;
      Alcotest.(check int)
        (Printf.sprintf "cut %d: applied = decoded" cut)
        k (Database.replicated_lsn f);
      converged (Printf.sprintf "cut %d" cut) db f
    end
  done

(* --- follower crash mid-stream --------------------------------------------- *)

let test_follower_restart () =
  let spec = smoke_spec in
  let db, sales, views = Workload.setup spec in
  ignore (Workload.run_on db sales views spec);
  Wal.force (Database.wal db) (Wal.last_lsn (Database.wal db));
  let total = Wal.flushed_lsn (Database.wal db) in
  List.iter
    (fun k ->
      let cut = total * k / 5 in
      let f = Database.create_follower ~config:spec.Workload.config () in
      ignore (ship ~upto:cut db f);
      let f = Database.crash f in
      Alcotest.(check bool) "restart keeps the role" true (Database.is_follower f);
      Alcotest.(check int)
        (Printf.sprintf "restart at %d/%d keeps the applied horizon" cut total)
        cut (Database.replicated_lsn f);
      converged (Printf.sprintf "after restart at %d/%d" cut total) db f;
      Alcotest.(check bool) "restarted replica satisfies V1" true
        (Workload.check_consistency f (Database.view f "sales_by_product_0")))
    [ 1; 2; 3; 4 ]

(* --- crash-the-primary sweep ----------------------------------------------- *)

(* A workload with a continuously-streaming follower fiber: the shipper
   observes the stable horizon between other fibers' steps, ships it, and
   advances the slot's retention floor to its ack — exactly the server's
   subscription lifecycle. Determinism makes the force sweep exhaustive:
   the counting run and every armed run interleave identically up to the
   trigger. *)
let sweep_spec =
  {
    Workload.default with
    seed = 7;
    mpl = 3;
    txns_per_worker = 3;
    ops_per_txn = 3;
    delete_fraction = 0.;
    n_groups = 5;
    theta = 0.8;
    initial_rows = 20;
    n_views = 1;
    strategy = Maintain.Escrow;
    config =
      { Workload.default.Workload.config with Database.pool_capacity = 8 };
  }

let ckpt_every = 3

let run_replicated_until_crash spec fcfg =
  let db, sales, _views = Workload.setup spec in
  let f = Database.create_follower ~config:spec.Workload.config () in
  Wal.set_retain_floor (Database.wal db) (Some 1);
  Database.install_fault db fcfg;
  let seed = spec.Workload.seed in
  let committed = ref 0 in
  let crashed = ref false in
  (try
     Sched.run ~seed (fun () ->
         let remaining = ref spec.Workload.mpl in
         let running = ref true in
         let wake_main = ref (fun () -> ()) in
         ignore
           (Sched.spawn (fun () ->
                while !running do
                  ignore (ship ~batch:16 db f);
                  Wal.set_retain_floor (Database.wal db)
                    (Some (Database.replicated_lsn f + 1));
                  Sched.yield ()
                done));
         for w = 1 to spec.Workload.mpl do
           ignore
             (Sched.spawn (fun () ->
                  Fun.protect
                    ~finally:(fun () ->
                      decr remaining;
                      if !remaining = 0 then begin
                        running := false;
                        !wake_main ()
                      end)
                    (fun () ->
                      let rng = Rng.create ((seed * 131) + w) in
                      let next = ref (1000 * w) in
                      for _ = 1 to spec.Workload.txns_per_worker do
                        (try
                           Database.transact db (fun tx ->
                               for _ = 1 to spec.Workload.ops_per_txn do
                                 incr next;
                                 ignore
                                   (Table.insert db tx sales
                                      [|
                                        Value.Int !next;
                                        Value.Int (1 + Rng.int rng 5);
                                        Value.Int (1 + Rng.int rng 10);
                                        Value.Float 1.;
                                      |]);
                                 Sched.yield ()
                               done);
                           incr committed;
                           if !committed mod ckpt_every = 0 then
                             Database.checkpoint db
                         with Txn.Conflict _ -> ());
                        Sched.yield ()
                      done)))
         done;
         if !remaining > 0 then
           Sched.suspend (fun wake _cancel -> wake_main := wake))
   with Fault.Crash_point _ -> crashed := true);
  (db, f, !committed, !crashed)

let count_forces spec =
  let db, _f, committed, crashed =
    run_replicated_until_crash spec Fault.no_faults
  in
  Alcotest.(check bool) "counting run crashed" false crashed;
  Alcotest.(check bool) "counting run committed" true (committed > 0);
  Fault.forces_seen (Database.fault_plan db)

let run_sweep_point spec fcfg desc =
  let db, f, _committed, crashed = run_replicated_until_crash spec fcfg in
  if not crashed then
    Alcotest.failf "%s: armed trigger did not fire (sweep out of sync)" desc;
  (* the slot is durable state: pin it to the follower's ack so recovery's
     checkpoint cannot truncate records the replica still needs (the CLRs
     it is about to append among them) *)
  Wal.set_retain_floor (Database.wal db)
    (Some (Database.replicated_lsn f + 1));
  let db' = Database.crash db in
  converged desc db' f;
  Alcotest.(check bool) (desc ^ ": replica view satisfies V1") true
    (Workload.check_consistency f (Database.view f "sales_by_product_0"))

(* --- heap growth under physical redo --------------------------------------- *)

(* Enough preloaded rows to span several heap pages: physical redo on the
   follower must adopt pages appended past each handle's cached tail
   (Heap_file.refresh), or the replica digest silently misses the chain's
   suffix. Regression test for exactly that bug. *)
let test_heap_growth () =
  let spec =
    { smoke_spec with Workload.seed = 5; initial_rows = 400; txns_per_worker = 2 }
  in
  let db, sales, views = Workload.setup spec in
  ignore (Workload.run_on db sales views spec);
  let f = Database.create_follower ~config:spec.Workload.config () in
  converged "heap growth" db f;
  let count d =
    Database.transact d ~read_only:true (fun tx ->
        Seq.length
          (Query.table_scan d (Some tx) (Database.table d "sales")
             Query.Serializable))
  in
  (* ~195 sales rows fit a page: 400 preloaded rows guarantee the chain
     grew past the follower handles' attach-time tails *)
  Alcotest.(check bool) "rows span multiple pages" true (count db >= 300);
  Alcotest.(check int) "equal row counts" (count db) (count f)

(* --- wire-level: server, replica driver, clients ---------------------------- *)

module Server = Ivdb_server.Server
module Replica = Ivdb_server.Replica
module Client = Ivdb_client.Client
module Transport = Ivdb_transport.Transport
module Wire = Ivdb_wire.Wire
module Sql = Ivdb_sql.Sql

let rows = function
  | Sql.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected Rows"

let cell_str (r : Ivdb_relation.Row.t) i =
  match r.(i) with Value.Str s -> s | _ -> Alcotest.fail "expected Str cell"

let server_error code f =
  try
    ignore (f ());
    false
  with Client.Server_error { code = c; _ } -> c = code

(* Full deployment over loopback transports: a primary server with SQL
   clients, a follower database fed by the Replica driver, and a SECOND
   server fronting the follower for read-only SQL. Asserts the redesigned
   surfaces end to end: streaming catch-up, E_read_only over the wire,
   snapshot SELECTs on the follower, sys.replication on both roles, and
   slot reuse when a replica reconnects under the same name. *)
let test_wire_replication () =
  let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
  let db = Database.create ~config () in
  let fdb = Database.create_follower ~config () in
  let caught_up () =
    while Database.replicated_lsn fdb < Wal.flushed_lsn (Database.wal db) do
      Sched.yield ()
    done
  in
  Sched.run ~seed:7 (fun () ->
      let pnet = Transport.Loopback.create ~backlog:16 () in
      let fnet = Transport.Loopback.create ~backlog:16 () in
      let psrv = Server.create db (Transport.Loopback.listener pnet) in
      Server.serve psrv;
      let r1 = Replica.create ~name:"netfollower" fdb (Transport.Loopback.dialer pnet) in
      let fsrv = Server.create fdb (Transport.Loopback.listener fnet) in
      Server.add_sys fsrv (Replica.register_sys r1);
      Server.serve fsrv;
      Replica.spawn r1;
      (* primary takes writes while the follower streams *)
      let pcl = Client.connect ~client:"writer" (Transport.Loopback.dialer pnet) in
      ignore (Client.exec pcl "CREATE TABLE t (a INT NOT NULL, b TEXT)");
      ignore (Client.exec pcl "INSERT INTO t VALUES (1, 'x'), (2, 'y')");
      caught_up ();
      Alcotest.(check bool) "driver is streaming" true
        (Replica.status r1 = Replica.Streaming);
      (* follower serves snapshot reads over the wire, rejects writes *)
      let fcl = Client.connect ~client:"reader" (Transport.Loopback.dialer fnet) in
      Alcotest.(check int) "follower serves the replicated rows" 2
        (List.length (rows (Client.exec fcl "SELECT a, b FROM t ORDER BY a")));
      Alcotest.(check bool) "INSERT on follower is E_read_only" true
        (server_error Wire.E_read_only (fun () ->
             Client.exec fcl "INSERT INTO t VALUES (3, 'z')"));
      Alcotest.(check bool) "BEGIN on follower is E_read_only" true
        (server_error Wire.E_read_only (fun () -> Client.exec fcl "BEGIN"));
      ignore (Client.exec fcl "BEGIN READ ONLY");
      Alcotest.(check int) "snapshot SELECT inside BEGIN READ ONLY" 2
        (List.length (rows (Client.exec fcl "SELECT a FROM t")));
      ignore (Client.exec fcl "COMMIT");
      (* sys.replication reflects the role on each side *)
      let prow =
        match rows (Client.exec pcl "SELECT * FROM sys.replication") with
        | [ r ] -> r
        | rs -> Alcotest.failf "primary: %d replication rows" (List.length rs)
      in
      Alcotest.(check string) "primary role" "primary" (cell_str prow 0);
      Alcotest.(check string) "primary peer is the slot name" "netfollower"
        (cell_str prow 1);
      Alcotest.(check string) "slot is streaming" "streaming" (cell_str prow 2);
      let frow =
        match rows (Client.exec fcl "SELECT * FROM sys.replication") with
        | [ r ] -> r
        | rs -> Alcotest.failf "follower: %d replication rows" (List.length rs)
      in
      Alcotest.(check string) "follower role" "follower" (cell_str frow 0);
      Alcotest.(check string) "follower streaming" "streaming" (cell_str frow 2);
      (* reconnect under the same name: the durable slot is reused, the
         new driver resumes from the follower's applied horizon *)
      Replica.stop r1;
      while Replica.status r1 <> Replica.Stopped do
        Sched.yield ()
      done;
      ignore (Client.exec pcl "INSERT INTO t VALUES (3, 'z')");
      let r2 = Replica.create ~name:"netfollower" fdb (Transport.Loopback.dialer pnet) in
      Replica.spawn r2;
      caught_up ();
      Alcotest.(check int) "rows after resubscribe" 3
        (List.length (rows (Client.exec fcl "SELECT a FROM t")));
      (match Server.replicas psrv with
      | [ (name, acked, connected) ] ->
          Alcotest.(check string) "one durable slot" "netfollower" name;
          Alcotest.(check bool) "slot reconnected" true connected;
          Alcotest.(check int) "slot acked the full log" acked
            (Wal.flushed_lsn (Database.wal db))
      | rs -> Alcotest.failf "%d replication slots" (List.length rs));
      Client.close pcl;
      Client.close fcl;
      (* drivers must stop BEFORE the listener: a dialing replica retries
         against a drained loopback forever and the run never terminates *)
      Replica.stop r2;
      Server.drain fsrv;
      Server.drain psrv);
  Alcotest.(check string) "wire-replicated digest matches"
    (Database.state_digest db) (Database.state_digest fdb)

(* A fresh follower whose subscribe position predates the primary's
   retained log is refused with [Err E_repl]: the driver must treat that
   as fatal (stop, surface the error) rather than redialling forever. *)
let test_wire_subscribe_refused () =
  let config = { Database.default_config with read_cost = 0; write_cost = 0 } in
  let db = Database.create ~config () in
  let t =
    Database.create_table db ~name:"t"
      ~cols:[ { Schema.name = "id"; ty = Value.TInt; nullable = false } ]
  in
  for i = 1 to 5 do
    Database.transact db (fun tx -> ignore (Table.insert db tx t [| Value.Int i |]))
  done;
  (* no slots yet: the checkpoint truncates the log freely *)
  Database.checkpoint db;
  Alcotest.(check bool) "log truncated" true (Wal.first_lsn (Database.wal db) > 1);
  let fdb = Database.create_follower ~config () in
  Sched.run ~seed:3 (fun () ->
      let net = Transport.Loopback.create ~backlog:4 () in
      let srv = Server.create db (Transport.Loopback.listener net) in
      Server.serve srv;
      let r = Replica.create ~name:"late" fdb (Transport.Loopback.dialer net) in
      Replica.spawn r;
      while Replica.status r <> Replica.Stopped do
        Sched.yield ()
      done;
      Alcotest.(check bool) "driver surfaced the refusal" true
        (Replica.last_error r <> None);
      Alcotest.(check int) "nothing was applied" 0 (Database.replicated_lsn fdb);
      Server.drain srv)

let sweep_crash_primary () =
  let spec = sweep_spec in
  let n_forces = count_forces spec in
  Alcotest.(check bool) "workload has force points" true (n_forces > 0);
  for k = 1 to n_forces do
    run_sweep_point spec
      { Fault.no_faults with crash_at_force = Some k }
      (Printf.sprintf "clean primary crash at force %d" k);
    run_sweep_point spec
      { Fault.no_faults with crash_at_force = Some k; torn_tail = true }
      (Printf.sprintf "torn primary crash at force %d" k)
  done

let () =
  Alcotest.run "repl"
    [
      ( "shipping",
        [
          Alcotest.test_case "workload ships and replica serves reads" `Quick
            test_ship_smoke;
          Alcotest.test_case "resume below retention is refused" `Quick
            test_resume_below_retention;
          qtest prop_converges_across_seeds;
        ] );
      ( "roles",
        [ Alcotest.test_case "follower rejects writes" `Quick test_write_rejection ] );
      ( "redo",
        [
          Alcotest.test_case "heap chain growth under physical redo" `Quick
            test_heap_growth;
        ] );
      ( "wire",
        [
          Alcotest.test_case "end-to-end replication over loopback" `Quick
            test_wire_replication;
          Alcotest.test_case "subscribe below retention is fatal" `Quick
            test_wire_subscribe_refused;
        ] );
      ( "faults",
        [
          Alcotest.test_case "torn batch byte sweep" `Quick test_torn_batch;
          Alcotest.test_case "follower restart mid-stream" `Quick
            test_follower_restart;
          Alcotest.test_case "primary crash-at-force sweep" `Quick
            sweep_crash_primary;
        ] );
    ]
