module Txn = Ivdb_txn.Txn
module Wal = Ivdb_wal.Wal
module Log_record = Ivdb_wal.Log_record
module Recovery = Ivdb_recovery.Recovery
module Heap_file = Ivdb_storage.Heap_file
module Bufpool = Ivdb_storage.Bufpool
module Btree = Ivdb_btree.Btree
module Lock_mgr = Ivdb_lock.Lock_mgr
module Name = Ivdb_lock.Lock_name
module Mode = Ivdb_lock.Lock_mode
module Metrics = Ivdb_util.Metrics
module Sched = Ivdb_sched.Sched
module Harness = Ivdb_test_support.Harness

let check = Alcotest.check

(* A miniature access layer: one heap (table 1) and one B-tree (index 1),
   with the logical-undo executor the db layer would normally install. *)
type env = {
  h : Harness.t;
  heap : Heap_file.t;
  tree : Btree.t;
}

let install_undo h ~heap ~tree =
  Txn.set_undo_exec h.Harness.mgr (fun _txn undo ->
      match undo with
      | Log_record.No_undo -> []
      | Log_record.Undo_heap_insert { rid; _ } -> Heap_file.delete heap rid
      | Log_record.Undo_heap_delete { rid; _ } -> Heap_file.revive heap rid
      | Log_record.Undo_heap_update { rid; before; _ } -> Heap_file.update heap rid before
      | Log_record.Undo_bt_insert { key; _ } -> Btree.delete_raw tree ~key
      | Log_record.Undo_bt_delete { key; value; _ } -> Btree.insert_raw tree ~key ~value
      | Log_record.Undo_bt_update { key; before; _ } -> Btree.update_raw tree ~key ~value:before
      | Log_record.Undo_escrow _ -> failwith "no escrow in this suite")

let make_env () =
  let h = Harness.make ~pool_capacity:64 () in
  let stx = Txn.begin_system h.Harness.mgr in
  let heap, diffs = Heap_file.create h.Harness.pool h.Harness.disk in
  Txn.log_update h.Harness.mgr stx ~undo:Log_record.No_undo diffs;
  Txn.commit h.Harness.mgr stx;
  let tree = Btree.create h.Harness.mgr ~index_id:1 in
  install_undo h ~heap ~tree;
  { h; heap; tree }

let reopen env =
  (* crash: volatile state gone; rebuild handles over the stable substrate *)
  let h' = Harness.crash env.h ~pool_capacity:64 in
  let analysis = Recovery.analyze h'.Harness.wal in
  let applied = (Recovery.redo h'.Harness.wal h'.Harness.pool analysis).Recovery.applied in
  Txn.bump_txn_id h'.Harness.mgr analysis.Recovery.max_txn_id;
  let heap =
    Heap_file.attach h'.Harness.pool h'.Harness.disk
      ~first_page:(Heap_file.first_page env.heap)
  in
  let tree = Btree.attach h'.Harness.mgr ~index_id:1 ~root:(Btree.root env.tree) in
  let env' = { h = h'; heap; tree } in
  install_undo h' ~heap ~tree;
  List.iter
    (fun (tid, last) ->
      let t = Txn.resurrect h'.Harness.mgr ~id:tid ~last_lsn:last () in
      Txn.rollback_tail h'.Harness.mgr t ~from:last)
    analysis.Recovery.losers;
  (env', analysis, applied)

let heap_insert env tx record =
  let rid, diffs = Heap_file.insert env.heap record in
  Txn.log_update env.h.Harness.mgr tx
    ~undo:(Log_record.Undo_heap_insert { table = 1; rid })
    diffs;
  rid

let heap_delete env tx rid =
  let diffs = Heap_file.delete env.heap rid in
  Txn.log_update env.h.Harness.mgr tx
    ~undo:(Log_record.Undo_heap_delete { table = 1; rid })
    diffs

let heap_contents env =
  let acc = ref [] in
  Heap_file.iter env.heap (fun _ r -> acc := r :: !acc);
  List.sort compare !acc

let tree_contents env =
  let acc = ref [] in
  Btree.iter env.tree (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

(* --- basic lifecycle ---------------------------------------------------- *)

let test_commit_forces_log () =
  let env = make_env () in
  let tx = Txn.begin_txn env.h.Harness.mgr in
  ignore (heap_insert env tx "r1");
  Alcotest.(check bool) "not yet forced" true
    (Wal.flushed_lsn env.h.Harness.wal < Wal.last_lsn env.h.Harness.wal);
  Txn.commit env.h.Harness.mgr tx;
  Alcotest.(check bool) "commit record stable" true
    (Wal.flushed_lsn env.h.Harness.wal >= Txn.last_lsn tx - 1)

let test_system_txn_no_force () =
  let env = make_env () in
  let flushed = Wal.flushed_lsn env.h.Harness.wal in
  let stx = Txn.begin_system env.h.Harness.mgr in
  Txn.commit env.h.Harness.mgr stx;
  check Alcotest.int "no force on system commit" flushed
    (Wal.flushed_lsn env.h.Harness.wal)

let test_abort_rolls_back_heap () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx0 = Txn.begin_txn mgr in
  let keep = heap_insert env tx0 "keep" in
  Txn.commit mgr tx0;
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "drop1");
  heap_delete env tx keep;
  ignore (heap_insert env tx "drop2");
  Txn.abort mgr tx;
  check Alcotest.(list string) "only committed row survives, delete undone"
    [ "keep" ] (heap_contents env);
  Alcotest.(check bool) "status" true (Txn.status tx = Txn.Aborted)

let test_abort_rolls_back_btree () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx0 = Txn.begin_txn mgr in
  Btree.insert tx0 env.tree ~key:"b" ~value:"base";
  Txn.commit mgr tx0;
  let tx = Txn.begin_txn mgr in
  Btree.insert tx env.tree ~key:"a" ~value:"new";
  Btree.update tx env.tree ~key:"b" ~value:"changed";
  Btree.delete tx env.tree ~key:"b";
  Txn.abort mgr tx;
  check
    Alcotest.(list (pair string string))
    "tree restored" [ ("b", "base") ] (tree_contents env)

let test_abort_idempotent () =
  let env = make_env () in
  let tx = Txn.begin_txn env.h.Harness.mgr in
  ignore (heap_insert env tx "x");
  Txn.abort env.h.Harness.mgr tx;
  Txn.abort env.h.Harness.mgr tx;
  check Alcotest.(list string) "clean" [] (heap_contents env)

let test_clr_chain () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "a");
  ignore (heap_insert env tx "b");
  Txn.abort mgr tx;
  (* log shape: Begin, U1, U2, Abort, CLR(undo U2), CLR(undo U1), End *)
  let clrs = ref [] in
  for lsn = 1 to Wal.last_lsn env.h.Harness.wal do
    match (Wal.get env.h.Harness.wal lsn).Log_record.body with
    | Log_record.Clr { undo_next; _ } -> clrs := undo_next :: !clrs
    | _ -> ()
  done;
  check Alcotest.int "two CLRs" 2 (List.length !clrs);
  (* the second CLR's undo_next points before the first update *)
  Alcotest.(check bool) "descending undo-next chain" true
    (List.hd !clrs < List.nth !clrs 1)

let test_conflict_exception_from_deadlock () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let outcomes = ref [] in
  Sched.run ~policy:Sched.Fifo (fun () ->
      let worker first second =
        let tx = Txn.begin_txn mgr in
        try
          Txn.lock mgr tx first Mode.X;
          Sched.yield ();
          Sched.yield ();
          Txn.lock mgr tx second Mode.X;
          Txn.commit mgr tx;
          outcomes := `Commit :: !outcomes
        with Txn.Conflict _ ->
          Txn.abort mgr tx;
          outcomes := `Abort :: !outcomes
      in
      ignore (Sched.spawn (fun () -> worker (Name.Table 1) (Name.Table 2)));
      ignore (Sched.spawn (fun () -> worker (Name.Table 2) (Name.Table 1))));
  let aborts = List.length (List.filter (fun o -> o = `Abort) !outcomes) in
  check Alcotest.int "exactly one victim" 1 aborts

let test_read_only_commit_skips_force () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  (* durable baseline *)
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "x");
  Txn.commit mgr tx;
  let forces = Metrics.get env.h.Harness.metrics "log.force" in
  (* read-only transaction: reads, locks, commits — no force *)
  let ro = Txn.begin_txn mgr in
  Txn.lock mgr ro (Name.Table 1) Mode.S;
  Txn.commit mgr ro;
  check Alcotest.int "no extra force" forces
    (Metrics.get env.h.Harness.metrics "log.force");
  check Alcotest.int "counted" 1
    (Metrics.get env.h.Harness.metrics "txn.read_only_commit")

(* --- savepoints ------------------------------------------------------------ *)

let test_savepoint_partial_rollback () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "before");
  let sp = Txn.savepoint tx in
  ignore (heap_insert env tx "after-1");
  ignore (heap_insert env tx "after-2");
  Txn.rollback_to mgr tx sp;
  Txn.commit mgr tx;
  check Alcotest.(list string) "only pre-savepoint work" [ "before" ]
    (heap_contents env)

let test_savepoint_nested () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "a");
  let sp1 = Txn.savepoint tx in
  ignore (heap_insert env tx "b");
  let sp2 = Txn.savepoint tx in
  ignore (heap_insert env tx "c");
  Txn.rollback_to mgr tx sp2;
  (* b survives, c gone *)
  ignore (heap_insert env tx "d");
  Txn.rollback_to mgr tx sp1;
  (* b and d gone *)
  ignore (heap_insert env tx "e");
  Txn.commit mgr tx;
  check Alcotest.(list string) "nested savepoints" [ "a"; "e" ] (heap_contents env)

let test_savepoint_then_full_abort () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "x");
  let sp = Txn.savepoint tx in
  ignore (heap_insert env tx "y");
  Txn.rollback_to mgr tx sp;
  ignore (heap_insert env tx "z");
  (* the CLRs from the partial rollback must not confuse the full abort *)
  Txn.abort mgr tx;
  check Alcotest.(list string) "nothing survives" [] (heap_contents env)

let test_savepoint_work_after_rollback_persists () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  let sp = Txn.savepoint tx in
  Btree.insert tx env.tree ~key:"k" ~value:"v1";
  Txn.rollback_to mgr tx sp;
  Btree.insert tx env.tree ~key:"k" ~value:"v2";
  Txn.commit mgr tx;
  check
    Alcotest.(list (pair string string))
    "post-rollback insert persists" [ ("k", "v2") ] (tree_contents env)

let test_savepoint_crash_after_partial_rollback () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "keep-me-not");
  let sp = Txn.savepoint tx in
  ignore (heap_insert env tx "rolled");
  Txn.rollback_to mgr tx sp;
  ignore (heap_insert env tx "tail");
  (* loser with a compensated middle section; stable log, then crash *)
  Wal.force env.h.Harness.wal (Wal.last_lsn env.h.Harness.wal);
  let env', _, _ = reopen env in
  check Alcotest.(list string) "loser fully undone" [] (heap_contents env')

(* --- group commit ---------------------------------------------------------- *)

let group_mode = Txn.Group { max_batch = 4; max_wait_ticks = 10 }

let test_group_commit_batches_forces () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  Txn.set_commit_mode mgr group_mode;
  let forces_before = Metrics.get env.h.Harness.metrics "log.force" in
  Sched.run ~policy:Sched.Fifo (fun () ->
      for w = 1 to 4 do
        ignore
          (Sched.spawn (fun () ->
               let tx = Txn.begin_txn mgr in
               ignore (heap_insert env tx (Printf.sprintf "g%d" w));
               Txn.commit mgr tx;
               (* acknowledged == durable: the batched force covered us *)
               Alcotest.(check bool) "acked commit is flushed" true
                 (Wal.flushed_lsn env.h.Harness.wal >= Txn.last_lsn tx - 1)))
      done);
  let forces = Metrics.get env.h.Harness.metrics "log.force" - forces_before in
  check Alcotest.int "one force for the whole batch" 1 forces;
  check Alcotest.int "all four committed" 4
    (Metrics.get env.h.Harness.metrics "txn.commit");
  check
    Alcotest.(list (pair int int))
    "batch histogram: one batch of 4" [ (4, 1) ]
    (Metrics.hist_snapshot env.h.Harness.metrics "commit.batch");
  check Alcotest.int "forces avoided" 3
    (Metrics.get env.h.Harness.metrics "commit.forces_avoided")

let test_group_commit_deadline_fires () =
  (* a single committer must not wait forever for a batch that never
     fills: the coordinator's tick deadline flushes it *)
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  Txn.set_commit_mode mgr group_mode;
  Sched.run ~policy:Sched.Fifo (fun () ->
      let tx = Txn.begin_txn mgr in
      ignore (heap_insert env tx "solo");
      Txn.commit mgr tx);
  check
    Alcotest.(list (pair int int))
    "batch of 1" [ (1, 1) ]
    (Metrics.hist_snapshot env.h.Harness.metrics "commit.batch");
  check Alcotest.(list string) "durable" [ "solo" ] (heap_contents env)

let test_group_commit_outside_run_falls_back () =
  (* no scheduler, no fibers: Group mode degrades to a private force *)
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  Txn.set_commit_mode mgr group_mode;
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "solo");
  Txn.commit mgr tx;
  Alcotest.(check bool) "commit record stable" true
    (Wal.flushed_lsn env.h.Harness.wal >= Txn.last_lsn tx - 1);
  check Alcotest.int "sync fallback counted" 1
    (Metrics.get env.h.Harness.metrics "commit.sync_fallback")

let test_group_commit_crash_before_force_loses_txn () =
  (* crash in the window between the Commit append and the batched force:
     the transaction was never acknowledged, so it must be a loser (its
     earlier records reached the stable log via a page-steal force) *)
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "unacked");
  Wal.force env.h.Harness.wal (Wal.last_lsn env.h.Harness.wal);
  (* commit record appended but NOT yet covered by the coordinator's force *)
  ignore
    (Wal.append env.h.Harness.wal ~txn:(Txn.id tx) ~prev:(Txn.last_lsn tx)
       Log_record.Commit);
  let env', analysis, _ = reopen env in
  check Alcotest.int "rolled back as loser" 1
    (List.length analysis.Recovery.losers);
  check Alcotest.(list string) "no trace" [] (heap_contents env')

let test_group_commit_crash_after_force_commits_without_end () =
  (* crash after the batched force but before the End append: the stable
     Commit record alone makes the transaction committed *)
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "acked");
  ignore
    (Wal.append env.h.Harness.wal ~txn:(Txn.id tx) ~prev:(Txn.last_lsn tx)
       Log_record.Commit);
  Wal.force env.h.Harness.wal (Wal.last_lsn env.h.Harness.wal);
  let env', analysis, _ = reopen env in
  check Alcotest.int "not a loser" 0 (List.length analysis.Recovery.losers);
  check Alcotest.(list string) "durable" [ "acked" ] (heap_contents env')

let test_group_commit_checkpoint_during_wait () =
  (* a checkpoint taken while a transaction waits for the batched force
     records it in the ATT even though its Commit record is stable and
     earlier than the checkpoint; recovery must still commit it *)
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "waiting");
  ignore
    (Wal.append env.h.Harness.wal ~txn:(Txn.id tx) ~prev:(Txn.last_lsn tx)
       Log_record.Commit);
  (* tx is still in the manager's active table: the checkpoint ATT lists it *)
  Txn.checkpoint mgr ~catalog:"";
  let env', analysis, _ = reopen env in
  check Alcotest.int "stable Commit overrides checkpoint ATT" 0
    (List.length analysis.Recovery.losers);
  check Alcotest.(list string) "durable" [ "waiting" ] (heap_contents env')

let test_async_commit_outside_run_lost_on_crash () =
  (* Async acknowledges before any force; outside a scheduler run nothing
     flushes in the background either, so a crash loses the transaction *)
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  Txn.set_commit_mode mgr Txn.Async;
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "volatile");
  Txn.commit mgr tx;
  Alcotest.(check bool) "acknowledged as committed" true
    (Txn.status tx = Txn.Committed);
  Alcotest.(check bool) "but commit record not stable" true
    (Wal.flushed_lsn env.h.Harness.wal < Txn.last_lsn tx - 1);
  let env', _, _ = reopen env in
  check Alcotest.(list string) "lost: the weakened guarantee" []
    (heap_contents env')

let test_async_commit_in_run_flushed_by_coordinator () =
  (* inside a run the background coordinator drains the pending commits
     before the scheduler can go idle *)
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  Txn.set_commit_mode mgr Txn.Async;
  Sched.run ~policy:Sched.Fifo (fun () ->
      for w = 1 to 3 do
        ignore
          (Sched.spawn (fun () ->
               let tx = Txn.begin_txn mgr in
               ignore (heap_insert env tx (Printf.sprintf "a%d" w));
               Txn.commit mgr tx))
      done);
  Alcotest.(check bool) "drained at run end" true
    (Wal.flushed_lsn env.h.Harness.wal >= Wal.last_lsn env.h.Harness.wal - 3);
  let env', _, _ = reopen env in
  check Alcotest.int "all three recovered" 3 (List.length (heap_contents env'))

(* --- checkpoint + recovery ------------------------------------------------ *)

let test_recovery_committed_survive_uncommitted_vanish () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx1 = Txn.begin_txn mgr in
  ignore (heap_insert env tx1 "committed-1");
  Btree.insert tx1 env.tree ~key:"k1" ~value:"committed";
  Txn.commit mgr tx1;
  let tx2 = Txn.begin_txn mgr in
  ignore (heap_insert env tx2 "loser-row");
  Btree.insert tx2 env.tree ~key:"k2" ~value:"loser";
  (* the loser's records reach stable storage (as a page flush would force
     them), then the crash hits with tx2 still in flight *)
  Wal.force env.h.Harness.wal (Wal.last_lsn env.h.Harness.wal);
  let env', analysis, _ = reopen env in
  check Alcotest.int "one loser" 1 (List.length analysis.Recovery.losers);
  check Alcotest.(list string) "heap" [ "committed-1" ] (heap_contents env');
  check
    Alcotest.(list (pair string string))
    "tree" [ ("k1", "committed") ] (tree_contents env')

let test_recovery_unforced_loser_leaves_no_trace () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx1 = Txn.begin_txn mgr in
  ignore (heap_insert env tx1 "winner");
  Txn.commit mgr tx1;
  let tx2 = Txn.begin_txn mgr in
  ignore (heap_insert env tx2 "never-forced");
  (* no force after the commit of tx1: tx2's records die with the buffers *)
  let env', analysis, _ = reopen env in
  check Alcotest.int "no losers to undo" 0 (List.length analysis.Recovery.losers);
  check Alcotest.(list string) "only the winner" [ "winner" ] (heap_contents env')

let test_recovery_repeats_history_for_unflushed_pages () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  for i = 1 to 50 do
    ignore (heap_insert env tx (Printf.sprintf "row-%02d" i))
  done;
  Txn.commit mgr tx;
  (* nothing flushed to disk: redo must rebuild every page from the log *)
  let env', _, applied = reopen env in
  Alcotest.(check bool) "redo applied work" true (applied > 0);
  check Alcotest.int "all rows back" 50 (List.length (heap_contents env'))

let test_recovery_after_flush_skips_redo () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "persisted");
  Txn.commit mgr tx;
  Bufpool.flush_all env.h.Harness.pool;
  let env', _, applied = reopen env in
  check Alcotest.int "pageLSN check suppresses redo" 0 applied;
  check Alcotest.(list string) "contents" [ "persisted" ] (heap_contents env')

let test_recovery_with_checkpoint () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "before-ckpt");
  Txn.commit mgr tx;
  Txn.checkpoint mgr ~catalog:"CATALOG-BLOB";
  let tx2 = Txn.begin_txn mgr in
  ignore (heap_insert env tx2 "after-ckpt");
  Txn.commit mgr tx2;
  let env', analysis, _ = reopen env in
  check Alcotest.(option string) "catalog recovered" (Some "CATALOG-BLOB")
    analysis.Recovery.catalog;
  check Alcotest.(list string) "both rows" [ "after-ckpt"; "before-ckpt" ]
    (heap_contents env')

let test_recovery_checkpoint_with_active_txn () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "loser");
  Txn.checkpoint mgr ~catalog:"";
  (* loser active across the checkpoint, then more work, then crash *)
  ignore (heap_insert env tx "loser2");
  let env', analysis, _ = reopen env in
  check Alcotest.int "loser tracked via checkpoint ATT" 1
    (List.length analysis.Recovery.losers);
  check Alcotest.(list string) "rolled back" [] (heap_contents env')

let test_recovery_idempotent () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "x");
  Txn.commit mgr tx;
  let env', _, _ = reopen env in
  (* crash again immediately: double recovery must be stable *)
  let env'', _, _ = reopen env' in
  check Alcotest.(list string) "stable" [ "x" ] (heap_contents env'')

let test_recovery_crash_during_rollback () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx0 = Txn.begin_txn mgr in
  let keep = heap_insert env tx0 "keep" in
  ignore keep;
  Txn.commit mgr tx0;
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "a");
  ignore (heap_insert env tx "b");
  (* simulate a partial rollback that crashed: force all records so the
     stable log contains the abort + first CLR but no End *)
  Txn.abort mgr tx;
  Wal.force env.h.Harness.wal (Wal.last_lsn env.h.Harness.wal);
  let env', _, _ = reopen env in
  check Alcotest.(list string) "consistent" [ "keep" ] (heap_contents env')

let test_txn_id_monotonic_after_recovery () =
  let env = make_env () in
  let mgr = env.h.Harness.mgr in
  let tx = Txn.begin_txn mgr in
  ignore (heap_insert env tx "x");
  Txn.commit mgr tx;
  let env', _, _ = reopen env in
  let tx' = Txn.begin_txn env'.h.Harness.mgr in
  Alcotest.(check bool) "fresh txn id larger" true (Txn.id tx' > Txn.id tx);
  Txn.commit env'.h.Harness.mgr tx'

let () =
  Alcotest.run "txn"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "commit forces log" `Quick test_commit_forces_log;
          Alcotest.test_case "system txn no force" `Quick test_system_txn_no_force;
          Alcotest.test_case "abort rolls back heap" `Quick test_abort_rolls_back_heap;
          Alcotest.test_case "abort rolls back btree" `Quick test_abort_rolls_back_btree;
          Alcotest.test_case "abort idempotent" `Quick test_abort_idempotent;
          Alcotest.test_case "CLR chain" `Quick test_clr_chain;
          Alcotest.test_case "deadlock -> Conflict" `Quick
            test_conflict_exception_from_deadlock;
          Alcotest.test_case "read-only commit skips force" `Quick
            test_read_only_commit_skips_force;
        ] );
      ( "savepoints",
        [
          Alcotest.test_case "partial rollback" `Quick test_savepoint_partial_rollback;
          Alcotest.test_case "nested" `Quick test_savepoint_nested;
          Alcotest.test_case "then full abort" `Quick test_savepoint_then_full_abort;
          Alcotest.test_case "work after rollback persists" `Quick
            test_savepoint_work_after_rollback_persists;
          Alcotest.test_case "crash after partial rollback" `Quick
            test_savepoint_crash_after_partial_rollback;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "batches forces" `Quick test_group_commit_batches_forces;
          Alcotest.test_case "deadline flushes a lone committer" `Quick
            test_group_commit_deadline_fires;
          Alcotest.test_case "outside run falls back to sync" `Quick
            test_group_commit_outside_run_falls_back;
          Alcotest.test_case "crash before force loses txn" `Quick
            test_group_commit_crash_before_force_loses_txn;
          Alcotest.test_case "crash after force commits without End" `Quick
            test_group_commit_crash_after_force_commits_without_end;
          Alcotest.test_case "checkpoint during commit wait" `Quick
            test_group_commit_checkpoint_during_wait;
          Alcotest.test_case "async outside run lost on crash" `Quick
            test_async_commit_outside_run_lost_on_crash;
          Alcotest.test_case "async in run flushed by coordinator" `Quick
            test_async_commit_in_run_flushed_by_coordinator;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "winners survive, losers vanish" `Quick
            test_recovery_committed_survive_uncommitted_vanish;
          Alcotest.test_case "unforced loser leaves no trace" `Quick
            test_recovery_unforced_loser_leaves_no_trace;
          Alcotest.test_case "repeat history" `Quick
            test_recovery_repeats_history_for_unflushed_pages;
          Alcotest.test_case "flushed pages skip redo" `Quick
            test_recovery_after_flush_skips_redo;
          Alcotest.test_case "checkpoint" `Quick test_recovery_with_checkpoint;
          Alcotest.test_case "checkpoint with active txn" `Quick
            test_recovery_checkpoint_with_active_txn;
          Alcotest.test_case "idempotent" `Quick test_recovery_idempotent;
          Alcotest.test_case "crash during rollback" `Quick
            test_recovery_crash_during_rollback;
          Alcotest.test_case "txn ids monotonic" `Quick
            test_txn_id_monotonic_after_recovery;
        ] );
    ]
