(* The sharding coordinator end to end on the deterministic loopback
   transport: statement routing and view fan-out, cross-shard 2PC with
   escrow delta shipping, sys.shards through both paths, the
   coordinator-crash-at-every-action sweep, the participant-crash-at-
   every-force-point sweep (clean and torn tail), and the
   prepare/decide retransmit dedupe regression.

   The crash sweeps follow the repo's standard shape: run a scripted
   workload once unarmed to size the sweep, then re-run it once per
   injection point, power-cycle the whole cluster (Database.crash per
   shard, Wal.crash for the coordinator's decision log), run
   coordinator recovery, and require that (a) no shard keeps an
   in-doubt transaction and (b) the gc'd union of shard digests is
   bit-identical to a serial re-execution of exactly the
   decided-committed transactions on a fresh cluster. *)

module Sched = Ivdb_sched.Sched
module Database = Ivdb.Database
module Metrics = Ivdb_util.Metrics
module Sql = Ivdb_sql.Sql
module Transport = Ivdb_transport.Transport
module Server = Ivdb_server.Server
module Client = Ivdb_client.Client
module Coord = Ivdb_coord.Coord
module Coord_server = Ivdb_coord.Coord_server
module Trace = Ivdb_util.Trace
module Wal = Ivdb_wal.Wal
module Log_record = Ivdb_wal.Log_record
module Fault = Ivdb_storage.Fault
module Value = Ivdb_relation.Value

let check = Alcotest.check

let rows = function
  | Sql.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected Rows"

let affected = function
  | Sql.Affected n -> n
  | _ -> Alcotest.fail "expected Affected"

let sort_rows rs =
  List.sort (fun (a : Value.t array) b -> Value.compare a.(0) b.(0)) rs

(* --- cluster harness --------------------------------------------------- *)

(* The durable half of a cluster: the shard engines and the
   coordinator's decision log. Transports, servers and the coordinator
   itself are volatile — rebuilt by every [phase]. *)
type cluster = { mutable dbs : Database.t array; mutable cwal : Wal.t }

let fresh_cluster shards =
  {
    dbs =
      Array.init shards (fun i ->
          let db = Database.create () in
          Coord.configure_shard db ~shard:i ~shards;
          db);
    cwal = Wal.create (Metrics.create ());
  }

(* One power cycle: each phase is one scheduler run with fresh loopback
   nets, servers over the surviving engines, and a coordinator rebuilt
   over the surviving decision log. An escaping Fault.Crash_point
   models the whole machine dying mid-run. *)
let phase ?(seed = 11) ?trace cl f =
  Sched.run ~seed (fun () ->
      let nets =
        Array.map (fun _ -> Transport.Loopback.create ~backlog:64 ()) cl.dbs
      in
      let servers =
        Array.mapi
          (fun i net ->
            let s = Server.create cl.dbs.(i) (Transport.Loopback.listener net) in
            Server.serve s;
            s)
          nets
      in
      let dialers = Array.map Transport.Loopback.dialer nets in
      let c = Coord.create ?trace ~wal:cl.cwal dialers in
      let r = f c dialers in
      Coord.close c;
      Array.iter Server.drain servers;
      r)

(* Power loss: volatile state (open sessions, unforced tails) is gone;
   shards recover from their WALs — resurrecting in-doubt transactions
   with their locks — and the coordinator log drops its torn tail. *)
let crash_cluster cl =
  let shards = Array.length cl.dbs in
  cl.dbs <- Array.map Database.crash cl.dbs;
  Array.iteri (fun i db -> Coord.configure_shard db ~shard:i ~shards) cl.dbs;
  cl.cwal <- Wal.crash cl.cwal (Metrics.create ())

let digest_union cl =
  Array.iter (fun db -> ignore (Database.gc db)) cl.dbs;
  String.concat "|" (Array.to_list (Array.map Database.state_digest cl.dbs))

(* --- scripted workload ------------------------------------------------- *)

let setup_stmts =
  [
    "CREATE TABLE t (k INT NOT NULL, grp TEXT NOT NULL, qty INT NOT NULL)";
    "CREATE VIEW v AS SELECT grp, COUNT(*), SUM(qty) FROM t GROUP BY grp \
     USING ESCROW";
    (* DDL system transactions don't force the log on their own; the
       checkpoint makes the schema durable before any crash point *)
    "CHECKPOINT";
  ]

let run_setup c = List.iter (fun s -> ignore (Coord.exec c s)) setup_stmts

let keys_owned_by ~shards shard n =
  let rec go k acc remaining =
    if remaining = 0 then Array.of_list (List.rev acc)
    else if Coord.route_value ~shards (Value.Int k) = shard then
      go (k + 1) (k :: acc) (remaining - 1)
    else go (k + 1) acc remaining
  in
  go 0 [] n

(* [n] transactions, every one spanning both shards of a 2-shard
   cluster (one insert owned by each), so each COMMIT is a full 2PC
   round and global transaction [i+1] is script transaction [i]. *)
let script ~shards n =
  let a = keys_owned_by ~shards 0 n and b = keys_owned_by ~shards 1 n in
  List.init n (fun i ->
      [
        Printf.sprintf "INSERT INTO t VALUES (%d, 'g%d', %d)" a.(i) (i mod 3)
          (i + 1);
        Printf.sprintf "INSERT INTO t VALUES (%d, 'g%d', %d)" b.(i)
          ((i + 1) mod 3)
          (10 * (i + 1));
      ])

let run_txn c stmts =
  ignore (Coord.exec c "BEGIN");
  List.iter (fun s -> ignore (Coord.exec c s)) stmts;
  ignore (Coord.exec c "COMMIT")

let run_script c txns = List.iter (run_txn c) txns

(* Global transaction ids decided committed in the coordinator's log
   ("coord:N" -> N), i.e. the transactions recovery is bound to
   preserve. Read after recovery — the presumed-abort decisions it
   appends are committed=false and don't affect the set. *)
let committed_gids cwal =
  let h = Hashtbl.create 8 in
  Wal.iter_stable cwal (fun r ->
      match r.Log_record.body with
      | Log_record.Decision { gtxn; committed } ->
          Hashtbl.replace h gtxn committed
      | _ -> ());
  Hashtbl.fold
    (fun g c acc ->
      match String.rindex_opt g ':' with
      | Some i when c -> (
          match
            int_of_string_opt (String.sub g (i + 1) (String.length g - i - 1))
          with
          | Some n -> n :: acc
          | None -> acc)
      | _ -> acc)
    h []
  |> List.sort compare

(* Serial reference: execute exactly [gids] of [txns], in order, on a
   fresh cluster — the state every recovery must land on. Memoised per
   committed set (sweeps revisit the same prefixes). *)
let reference cache ~shards txns gids =
  let key = String.concat "," (List.map string_of_int gids) in
  match Hashtbl.find_opt cache key with
  | Some d -> d
  | None ->
      let cl = fresh_cluster shards in
      phase cl (fun c _ ->
          run_setup c;
          List.iteri
            (fun i txn -> if List.mem (i + 1) gids then run_txn c txn)
            txns);
      let d = digest_union cl in
      Hashtbl.add cache key d;
      d

(* --- routing / escrow smoke -------------------------------------------- *)

let test_cluster_smoke () =
  let shards = 2 in
  let cl = fresh_cluster shards in
  phase cl (fun c dialers ->
      run_setup c;
      check Alcotest.int "shard count" 2 (Coord.shard_count c);
      (* a multi-row INSERT splits by partition yet reports one count *)
      check Alcotest.int "all rows inserted" 5
        (affected
           (Coord.exec c
              "INSERT INTO t VALUES (0,'a',1),(1,'a',2),(2,'b',3),(3,'b',4),(4,'a',5)"));
      (* full scans fan out; ORDER BY/LIMIT re-applied after the merge *)
      check Alcotest.int "fan-out scan" 5
        (List.length (rows (Coord.exec c "SELECT k, grp, qty FROM t ORDER BY k")));
      (match rows (Coord.exec c "SELECT k, grp, qty FROM t ORDER BY k DESC LIMIT 2") with
      | [ [| Value.Int 4; _; _ |]; [| Value.Int 3; _; _ |] ] -> ()
      | _ -> Alcotest.fail "merged ORDER BY DESC LIMIT");
      (* pk = literal pins to the owning shard *)
      (match rows (Coord.exec c "SELECT qty FROM t WHERE k = 4") with
      | [ [| Value.Int 5 |] ] -> ()
      | _ -> Alcotest.fail "pinned point read");
      (* the escrow view is partitioned by group: fan-out is the full view *)
      (match sort_rows (rows (Coord.exec c "SELECT * FROM v")) with
      | [
          [| Value.Str "a"; Value.Int 3; Value.Int 8 |];
          [| Value.Str "b"; Value.Int 2; Value.Int 7 |];
        ] -> ()
      | v ->
          Alcotest.failf "view contents after inserts: %d rows" (List.length v));
      (* pinned autocommit write: deltas for a remote group still ship *)
      check Alcotest.int "pinned update" 1
        (affected (Coord.exec c "UPDATE t SET qty = 14 WHERE k = 3"));
      check Alcotest.int "pinned delete" 1
        (affected (Coord.exec c "DELETE FROM t WHERE k = 2"));
      (match sort_rows (rows (Coord.exec c "SELECT * FROM v")) with
      | [
          [| Value.Str "a"; Value.Int 3; Value.Int 8 |];
          [| Value.Str "b"; Value.Int 1; Value.Int 14 |];
        ] -> ()
      | _ -> Alcotest.fail "view contents after update+delete");
      (* a table with no views commits on the single-shard fast path *)
      ignore (Coord.exec c "CREATE TABLE u (k INT NOT NULL, x INT)");
      ignore (Coord.exec c "INSERT INTO u VALUES (0, 1)");
      let s = Coord.stats c in
      check Alcotest.int "every write committed" 4
        (s.Coord.single_shard_commits + s.Coord.cross_shard_commits);
      Alcotest.(check bool) "the split insert ran 2PC" true
        (s.Coord.cross_shard_commits >= 1);
      Alcotest.(check bool) "the view-less insert skipped 2PC" true
        (s.Coord.single_shard_commits >= 1);
      (* sys.shards: the coordinator concatenates every shard's row ... *)
      (match rows (Coord.exec c "SELECT * FROM sys.shards") with
      | [ [| Value.Int 0; Value.Int 2; Value.Str "participant"; _; _; _ |];
          [| Value.Int 1; Value.Int 2; Value.Str "participant"; _; _; _ |] ] ->
          ()
      | _ -> Alcotest.fail "sys.shards through the coordinator");
      (* ... and a direct connection to one shard shows just its own *)
      let cl0 = Client.connect dialers.(0) in
      (match rows (Client.exec cl0 "SELECT * FROM sys.shards") with
      | [ [| Value.Int 0; Value.Int 2; _; _; _; _ |] ] -> ()
      | _ -> Alcotest.fail "sys.shards on a shard connection");
      Client.close cl0)

let test_txn_semantics () =
  let shards = 2 in
  let cl = fresh_cluster shards in
  phase cl (fun c _ ->
      run_setup c;
      (* a cross-shard transaction is atomic across both shards *)
      run_txn c (List.hd (script ~shards 1));
      check Alcotest.int "both legs landed" 2
        (List.length (rows (Coord.exec c "SELECT k FROM t")));
      let s = Coord.stats c in
      check Alcotest.int "one 2PC commit" 1 s.Coord.cross_shard_commits;
      check Alcotest.int "prepare per participant" 2 s.Coord.prepares_sent;
      check Alcotest.int "decide per participant" 2 s.Coord.decides_sent;
      (* ROLLBACK undoes every shard's leg *)
      ignore (Coord.exec c "BEGIN");
      List.iter
        (fun s -> ignore (Coord.exec c s))
        (List.hd (script ~shards 2 |> List.tl));
      ignore (Coord.exec c "ROLLBACK");
      check Alcotest.int "rollback left no rows behind" 2
        (List.length (rows (Coord.exec c "SELECT k FROM t")));
      (* cross-shard aggregation over a base table is refused with a hint *)
      (try
         ignore (Coord.exec c "SELECT grp, SUM(qty) FROM t GROUP BY grp");
         Alcotest.fail "expected Coord_error"
       with Coord.Coord_error m ->
         Alcotest.(check bool) "hint names indexed views" true
           (String.length m > 0)))

(* --- coordinator crash at every protocol action ------------------------ *)

let test_coordinator_crash_sweep () =
  let shards = 2 in
  let txns = script ~shards 4 in
  let total =
    let cl = fresh_cluster shards in
    phase cl (fun c _ ->
        run_setup c;
        run_script c txns;
        Coord.actions c)
  in
  Alcotest.(check bool) "sweep has points" true (total > 0);
  let cache = Hashtbl.create 8 in
  let saw_indoubt = ref false in
  for n = 1 to total do
    let cl = fresh_cluster shards in
    let crashed =
      try
        phase cl (fun c _ ->
            Coord.set_crash_at_action c (Some n);
            run_setup c;
            run_script c txns;
            false)
      with Fault.Crash_point _ -> true
    in
    if not crashed then
      Alcotest.failf "action %d: armed trigger did not fire" n;
    crash_cluster cl;
    if Array.exists (fun db -> Database.indoubt_count db > 0) cl.dbs then
      saw_indoubt := true;
    phase cl (fun c _ -> ignore (Coord.recover c));
    Array.iteri
      (fun i db ->
        check Alcotest.int
          (Printf.sprintf "action %d: shard %d fully resolved" n i)
          0
          (Database.indoubt_count db))
      cl.dbs;
    let gids = committed_gids cl.cwal in
    check Alcotest.string
      (Printf.sprintf "action %d: digest union = serial prefix %s" n
         (String.concat "," (List.map string_of_int gids)))
      (reference cache ~shards txns gids)
      (digest_union cl)
  done;
  Alcotest.(check bool) "some crash left a shard in doubt" true !saw_indoubt

(* --- participant crash at every WAL force ------------------------------ *)

let participant_run ~txns fcfg =
  let shards = 2 in
  let cl = fresh_cluster shards in
  (* setup is not part of the sweep: its DDL forces are counted first
     and the armed trigger aimed past them, so every point lands inside
     the 2PC protocol *)
  Database.install_fault cl.dbs.(0) fcfg;
  let crashed =
    try
      phase cl (fun c _ ->
          run_setup c;
          run_script c txns;
          false)
    with Fault.Crash_point _ -> true
  in
  (cl, crashed)

let test_participant_crash_sweep () =
  let shards = 2 in
  let txns = script ~shards 3 in
  (* unarmed counting runs: forces during setup alone, then in total *)
  let setup_forces =
    let cl = fresh_cluster shards in
    Database.install_fault cl.dbs.(0) Fault.no_faults;
    phase cl (fun c _ -> run_setup c);
    Fault.forces_seen (Database.fault_plan cl.dbs.(0))
  in
  let total_forces =
    let cl, crashed = participant_run ~txns Fault.no_faults in
    Alcotest.(check bool) "counting run survived" false crashed;
    Fault.forces_seen (Database.fault_plan cl.dbs.(0))
  in
  Alcotest.(check bool) "workload forces past setup" true
    (total_forces > setup_forces);
  let cache = Hashtbl.create 8 in
  let sweep_point fcfg desc =
    let cl, crashed = participant_run ~txns fcfg in
    if not crashed then Alcotest.failf "%s: armed trigger did not fire" desc;
    crash_cluster cl;
    phase cl (fun c _ -> ignore (Coord.recover c));
    Array.iteri
      (fun i db ->
        check Alcotest.int
          (Printf.sprintf "%s: shard %d fully resolved" desc i)
          0
          (Database.indoubt_count db))
      cl.dbs;
    let gids = committed_gids cl.cwal in
    check Alcotest.string
      (Printf.sprintf "%s: digest union = serial prefix" desc)
      (reference cache ~shards txns gids)
      (digest_union cl)
  in
  for k = setup_forces + 1 to total_forces do
    sweep_point
      { Fault.no_faults with crash_at_force = Some k }
      (Printf.sprintf "clean participant crash at force %d" k);
    sweep_point
      {
        Fault.no_faults with
        fault_seed = k;
        crash_at_force = Some k;
        torn_tail = true;
      }
      (Printf.sprintf "torn participant crash at force %d" k)
  done

(* --- retransmit dedupe -------------------------------------------------- *)

(* A dialer whose connections can be told to die right before
   delivering the next reply: the request reaches the server, the
   response is lost — exactly the window where a blind resend could
   double-prepare. The yields let the server consume and process the
   in-flight request before the line is cut. *)
let flaky_dialer (inner : Transport.dialer) drop_next =
  {
    Transport.addr = inner.Transport.addr ^ "+flaky";
    dial =
      (fun () ->
        let c = inner.Transport.dial () in
        {
          c with
          Transport.read =
            (fun buf off len ->
              if !drop_next then begin
                drop_next := false;
                for _ = 1 to 200 do
                  Sched.yield ()
                done;
                c.Transport.close ();
                0
              end
              else c.Transport.read buf off len);
        });
  }

let test_retransmit_dedupe () =
  let db = Database.create () in
  Coord.configure_shard db ~shard:0 ~shards:1;
  Sched.run ~seed:5 (fun () ->
      let net = Transport.Loopback.create ~backlog:64 () in
      let srv = Server.create db (Transport.Loopback.listener net) in
      Server.serve srv;
      let drop = ref false in
      let cl = Client.connect (flaky_dialer (Transport.Loopback.dialer net) drop) in
      ignore (Client.exec cl "CREATE TABLE t (k INT NOT NULL, x INT)");
      ignore (Client.exec cl "BEGIN");
      ignore (Client.exec cl "INSERT INTO t VALUES (1, 10)");
      let deltas = Database.Deltas.encode [] in
      (* the Prepare lands, the Prepared ack dies with the connection *)
      drop := true;
      (try
         ignore (Client.prepare_2pc cl ~gtxn:"g:1" ~deltas);
         Alcotest.fail "expected Disconnected"
       with Client.Disconnected _ -> ());
      (* the coordinator-style resend is answered from the dedupe
         table on a fresh session — not re-executed *)
      (match Client.prepare_2pc cl ~gtxn:"g:1" ~deltas with
      | `Prepared -> ()
      | `Already_decided _ -> Alcotest.fail "not decided yet");
      check Alcotest.int "prepared exactly once" 1
        (Metrics.get (Database.metrics db) "shard.prepared");
      (* same for the decision: the ack dies, the resend is a no-op *)
      drop := true;
      (try
         Client.decide_2pc cl ~gtxn:"g:1" ~committed:true;
         Alcotest.fail "expected Disconnected"
       with Client.Disconnected _ -> ());
      Client.decide_2pc cl ~gtxn:"g:1" ~committed:true;
      check Alcotest.int "committed exactly once" 1
        (List.length (rows (Client.exec cl "SELECT k FROM t")));
      check Alcotest.int "nothing left in doubt" 0 (Database.indoubt_count db);
      Alcotest.(check bool) "decision remembered" true
        (Database.gtxn_status db "g:1" = `Decided true);
      Alcotest.(check bool) "two reconnects behind the retries" true
        (Client.reconnects cl = 2);
      Client.close cl;
      Server.drain srv)

(* --- prepare lost before the shard sees it ------------------------------ *)

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

(* A dialer whose connections silently drop selected outbound frames:
   the [k]-th write containing [needle] never reaches the server and the
   line dies — a connection failure BEFORE the shard processes the frame
   (the flaky dialer above covers failure after). *)
let black_hole_dialer (inner : Transport.dialer) needle drops =
  let seen = ref 0 in
  {
    inner with
    Transport.dial =
      (fun () ->
        let c = inner.Transport.dial () in
        {
          c with
          Transport.write =
            (fun s ->
              if contains s needle then begin
                incr seen;
                if List.mem !seen !drops then c.Transport.close ()
                else c.Transport.write s
              end
              else c.Transport.write s);
        });
  }

(* The regression the review found: when an op shard's connection dies
   before the server processes the Prepare, the disconnect rolls the
   shard's session transaction back — a blind resend would prepare a
   brand-new empty transaction and vote yes, silently committing a
   partial transaction. The coordinator must treat the dead line as a No
   vote and abort everywhere. *)
let cross_shard_cluster seed f =
  let shards = 2 in
  let dbs =
    Array.init shards (fun i ->
        let db = Database.create () in
        Coord.configure_shard db ~shard:i ~shards;
        db)
  in
  Sched.run ~seed (fun () ->
      let nets =
        Array.map (fun _ -> Transport.Loopback.create ~backlog:64 ()) dbs
      in
      let servers =
        Array.mapi
          (fun i net ->
            let s = Server.create dbs.(i) (Transport.Loopback.listener net) in
            Server.serve s;
            s)
          nets
      in
      let r = f dbs nets in
      Array.iter Server.drain servers;
      r)

let test_prepare_loss_aborts () =
  let shards = 2 in
  cross_shard_cluster 13 (fun dbs nets ->
      let drops = ref [] in
      let dialers =
        Array.mapi
          (fun i net ->
            let d = Transport.Loopback.dialer net in
            if i = 0 then black_hole_dialer d "coord:1" drops else d)
          nets
      in
      let c = Coord.create dialers in
      ignore (Coord.exec c "CREATE TABLE t (k INT NOT NULL, x INT)");
      let k0 = (keys_owned_by ~shards 0 1).(0)
      and k1 = (keys_owned_by ~shards 1 1).(0) in
      let legs =
        [
          Printf.sprintf "INSERT INTO t VALUES (%d, 1)" k0;
          Printf.sprintf "INSERT INTO t VALUES (%d, 2)" k1;
        ]
      in
      ignore (Coord.exec c "BEGIN");
      List.iter (fun s -> ignore (Coord.exec c s)) legs;
      (* the first 2PC frame carrying this gtxn — shard 0's Prepare, the
         one whose session transaction holds the shard's DML — vanishes *)
      drops := [ 1 ];
      (try
         ignore (Coord.exec c "COMMIT");
         Alcotest.fail "expected the transaction to abort"
       with Coord.Coord_error _ -> ());
      (* atomicity: no leg survived anywhere, nothing left in doubt *)
      check Alcotest.int "no partial commit" 0
        (List.length (rows (Coord.exec c "SELECT k FROM t")));
      Array.iteri
        (fun i db ->
          check Alcotest.int
            (Printf.sprintf "shard %d not in doubt" i)
            0
            (Database.indoubt_count db))
        dbs;
      check Alcotest.int "the abort was counted" 1 (Coord.stats c).Coord.aborts;
      (* the coordinator session survives: the same work then commits *)
      run_txn c legs;
      check Alcotest.int "retried transaction landed both legs" 2
        (List.length (rows (Coord.exec c "SELECT k FROM t")));
      Coord.close c)

(* --- decision re-delivery without an explicit recover ------------------- *)

let test_decision_redelivery () =
  let shards = 2 in
  cross_shard_cluster 17 (fun dbs nets ->
      let drops = ref [] in
      let dialers =
        Array.mapi
          (fun i net ->
            let d = Transport.Loopback.dialer net in
            if i = 1 then black_hole_dialer d "coord:1" drops else d)
          nets
      in
      let c = Coord.create dialers in
      ignore (Coord.exec c "CREATE TABLE t (k INT NOT NULL, x INT)");
      let k0 = keys_owned_by ~shards 0 2 and k1 = keys_owned_by ~shards 1 1 in
      (* shard 1's frames with this gtxn: Prepare (#1, delivered), then
         the Decide and its one retry (#2, #3) both vanish — the commit
         succeeds but shard 1 is left in doubt, holding its locks *)
      drops := [ 2; 3 ];
      run_txn c
        [
          Printf.sprintf "INSERT INTO t VALUES (%d, 1)" k0.(0);
          Printf.sprintf "INSERT INTO t VALUES (%d, 2)" k1.(0);
        ];
      check Alcotest.int "undelivered decision leaves shard 1 in doubt" 1
        (Database.indoubt_count dbs.(1));
      (* the next commit re-delivers the logged decision first — no
         operator recover() needed *)
      ignore
        (Coord.exec c (Printf.sprintf "INSERT INTO t VALUES (%d, 3)" k0.(1)));
      check Alcotest.int "re-delivery resolved the in-doubt txn" 0
        (Database.indoubt_count dbs.(1));
      check Alcotest.int "all three rows visible" 3
        (List.length (rows (Coord.exec c "SELECT k FROM t")));
      Coord.close c)

(* --- cluster observability: sys.gtxns, trace, wire catalogs ------------ *)

(* An armed crash at action 4 stops the protocol at the decision force:
   log_start (1) and both Prepares (2, 3) have happened, so the global
   transaction is mid-flight with two yes votes — exactly the moment
   sys.gtxns must show one "deciding" row. Recovery then presume-aborts
   it and the row drains into the recent list. *)
let test_gtxns_inflight () =
  let shards = 2 in
  let cl = fresh_cluster shards in
  phase cl (fun c _ ->
      run_setup c;
      Coord.set_crash_at_action c (Some 4);
      (try
         run_txn c (List.hd (script ~shards 1));
         Alcotest.fail "armed trigger did not fire"
       with Fault.Crash_point _ -> ());
      Coord.set_crash_at_action c None;
      (match rows (Coord.exec c "SELECT * FROM sys.gtxns") with
      | [
          [|
            Value.Str "coord:1";
            Value.Str "deciding";
            Value.Str "0,1";
            Value.Str "0:yes,1:yes";
            Value.Int _;
            Value.Int 0;
          |];
        ] -> ()
      | rs -> Alcotest.failf "in-flight sys.gtxns: %d row(s)" (List.length rs));
      (* the catalog answers with full sys.* semantics: WHERE/projection *)
      (match
         rows
           (Coord.exec c
              "SELECT gtxn FROM sys.gtxns WHERE phase = 'deciding'")
       with
      | [ [| Value.Str "coord:1" |] ] -> ()
      | _ -> Alcotest.fail "WHERE/projection over sys.gtxns");
      (* recovery resolves it (presumed abort) and the row drains *)
      check Alcotest.int "one txn resolved" 1 (Coord.recover c);
      (match rows (Coord.exec c "SELECT gtxn, phase FROM sys.gtxns") with
      | [ [| Value.Str "coord:1"; Value.Str "aborted" |] ] -> ()
      | _ -> Alcotest.fail "sys.gtxns after recovery");
      Array.iteri
        (fun i db ->
          check Alcotest.int
            (Printf.sprintf "shard %d not in doubt" i)
            0
            (Database.indoubt_count db))
        cl.dbs;
      (* a clean cross-shard commit lands newest-first ahead of it *)
      run_txn c (List.hd (script ~shards 2 |> List.tl));
      (match rows (Coord.exec c "SELECT gtxn, phase FROM sys.gtxns") with
      | [
          [| Value.Str "coord:2"; Value.Str "committed" |];
          [| Value.Str "coord:1"; Value.Str "aborted" |];
        ] -> ()
      | _ -> Alcotest.fail "recent gtxns after a clean commit");
      (* the typed 2PC metrics saw both rounds *)
      let m = Coord.metrics c in
      check Alcotest.int "four yes votes" 4 (Metrics.get m "coord.votes.yes");
      check Alcotest.int "one 2PC commit" 1 (Metrics.get m "coord.commit.2pc");
      check Alcotest.int "nothing in doubt" 0 (Metrics.get m "coord.indoubt"))

(* Two identical-seed runs with tracing on, coordinator and shards:
   both streams must be byte-identical, and the 2PC events on each side
   must carry the same gtxn and coordinator correlation id. *)
let coord_trace_run seed =
  let shards = 2 in
  let cbuf = Buffer.create 1024 and sbuf = Buffer.create 1024 in
  let cl = fresh_cluster shards in
  Array.iter
    (fun db ->
      let tr = Database.trace db in
      Trace.add_sink tr (fun r -> Buffer.add_string sbuf (Trace.to_json r ^ "\n"));
      Trace.set_enabled tr true)
    cl.dbs;
  let ctr = Trace.create ~clock:Sched.now ~fiber:Sched.self () in
  Trace.add_sink ctr (fun r -> Buffer.add_string cbuf (Trace.to_json r ^ "\n"));
  Trace.set_enabled ctr true;
  phase ~seed ~trace:ctr cl (fun c _ ->
      run_setup c;
      run_script c (script ~shards 2));
  (Buffer.contents cbuf, Buffer.contents sbuf)

let test_trace_determinism () =
  let c1, s1 = coord_trace_run 29 and c2, s2 = coord_trace_run 29 in
  check Alcotest.string "coordinator stream is byte-deterministic" c1 c2;
  check Alcotest.string "shard streams are byte-deterministic" s1 s2;
  Alcotest.(check bool) "a different seed reorders the stream" true
    (let c3, _ = coord_trace_run 31 in
     c3 <> c1 || String.length c1 > 0);
  (* gtxn correlation across the cluster: the first cross-shard COMMIT is
     statement 7 (3 setup statements, then BEGIN/INSERT/INSERT/COMMIT), so
     its coordinator-assigned rid is 7 — stamped on the coordinator's own
     prepare events AND on the Prepare frames the shards traced *)
  let expect what hay needle =
    Alcotest.(check bool) what true (contains hay needle)
  in
  expect "coordinator routed statements" c1 {|"ev": "coord.route"|};
  expect "coordinator prepare, correlated" c1
    {|"ev": "coord.prepare", "gtxn": "coord:1", "rid": 7|};
  expect "coordinator saw the votes" c1
    {|"ev": "coord.vote", "gtxn": "coord:1"|};
  expect "coordinator logged the decision" c1
    {|"ev": "coord.decision", "gtxn": "coord:1", "committed": true|};
  expect "coordinator decide fan-out, correlated" c1
    {|"ev": "coord.decide", "gtxn": "coord:1", "rid": 7|};
  expect "participants traced the Prepare with the same identity" s1
    {|"gtxn": "coord:1", "rid": 7, "outcome": "prepared"|};
  expect "participants traced the Decide with the same identity" s1
    {|"gtxn": "coord:1", "rid": 7, "committed": true, "outcome": "applied"|}

(* The whole observability surface over the wire: an ordinary client
   connected to Coord_server sees the coordinator catalogs, the
   Prometheus rollup, and shard-side slow-query rows carrying the
   coordinator's correlation ids. *)
let test_catalogs_over_wire () =
  let shards = 2 in
  let dbs =
    Array.init shards (fun i ->
        let db = Database.create () in
        Coord.configure_shard db ~shard:i ~shards;
        db)
  in
  Sched.run ~seed:23 (fun () ->
      let nets =
        Array.map (fun _ -> Transport.Loopback.create ~backlog:64 ()) dbs
      in
      let servers =
        Array.mapi
          (fun i net ->
            let s =
              Server.create
                ~config:{ Server.default_config with slow_query_ticks = Some 0 }
                dbs.(i)
                (Transport.Loopback.listener net)
            in
            Server.serve s;
            s)
          nets
      in
      let dialers = Array.map Transport.Loopback.dialer nets in
      let c = Coord.create dialers in
      let cnet = Transport.Loopback.create ~backlog:16 () in
      let csrv =
        Coord_server.create ~name:"coord-console" c
          (Transport.Loopback.listener cnet)
      in
      Coord_server.serve csrv;
      let cl = Client.connect (Transport.Loopback.dialer cnet) in
      check Alcotest.string "welcome names the coordinator" "coord-console"
        (Client.server_name cl);
      ignore
        (Client.exec cl
           "CREATE TABLE t (k INT NOT NULL, grp TEXT NOT NULL, qty INT NOT \
            NULL)");
      ignore
        (Client.exec cl
           "CREATE VIEW v AS SELECT grp, COUNT(*), SUM(qty) FROM t GROUP BY \
            grp USING ESCROW");
      let k0 = (keys_owned_by ~shards 0 1).(0)
      and k1 = (keys_owned_by ~shards 1 1).(0) in
      ignore (Client.exec cl "BEGIN");
      ignore
        (Client.exec cl (Printf.sprintf "INSERT INTO t VALUES (%d, 'a', 1)" k0));
      ignore
        (Client.exec cl (Printf.sprintf "INSERT INTO t VALUES (%d, 'b', 2)" k1));
      (match Client.exec cl "COMMIT" with
      | Sql.Message m ->
          Alcotest.(check bool) "2PC commit reported" true
            (contains m "2 participants")
      | _ -> Alcotest.fail "expected a commit message");
      let commit_rid = Coord.last_rid c in
      (* sys.gtxns answers over the wire, WHERE/projection included *)
      (match
         rows (Client.exec cl "SELECT gtxn, phase FROM sys.gtxns")
       with
      | [ [| Value.Str "coord:1"; Value.Str "committed" |] ] -> ()
      | _ -> Alcotest.fail "sys.gtxns over the wire");
      (* sys.coord_shards: one health row per shard, traffic counted *)
      (match rows (Client.exec cl "SELECT * FROM sys.coord_shards") with
      | [
          [| Value.Int 0; Value.Str _; _; Value.Int p0; Value.Int d0; _; _; _ |];
          [| Value.Int 1; Value.Str _; _; Value.Int p1; Value.Int d1; _; _; _ |];
        ] ->
          check Alcotest.int "prepares counted" 2 (p0 + p1);
          check Alcotest.int "decides counted" 2 (d0 + d1)
      | _ -> Alcotest.fail "sys.coord_shards over the wire");
      (* sys.cluster_metrics: rollup rows from the coordinator and every
         shard, in one relation *)
      let nodes =
        rows (Client.exec cl "SELECT node FROM sys.cluster_metrics")
        |> List.filter_map (function
             | [| Value.Str n |] -> Some n
             | _ -> None)
        |> List.sort_uniq compare
      in
      check
        Alcotest.(list string)
        "every node reports" [ "coord"; "shard0"; "shard1" ] nodes;
      Alcotest.(check bool) "the coordinator's 2PC counters are in the rollup"
        true
        (rows
           (Client.exec cl
              "SELECT value FROM sys.cluster_metrics WHERE counter = \
               'coord.commit.2pc'")
        = [ [| Value.Int 1 |] ]);
      (* Metrics_req returns the coordinator registry, not a shard's *)
      let prom = Client.metrics cl in
      Alcotest.(check bool) "prometheus rollup has the vote counters" true
        (contains prom "ivdb_coord_votes_yes 2");
      Alcotest.(check bool) "prometheus rollup has the phase histograms" true
        (contains prom "ivdb_coord_prepare_ticks");
      (* shard-side slow queries carry the coordinator's correlation ids:
         small sequential rids (client-originated ones are >= 65536) *)
      let slow = rows (Client.exec cl "SELECT rid, sql FROM sys.slow_queries") in
      Alcotest.(check bool) "shard 0 recorded coordinator statements" true
        (List.length slow > 0);
      List.iter
        (function
          | [| Value.Int rid; Value.Str _ |] ->
              Alcotest.(check bool) "rid is coordinator-assigned" true
                (rid >= 1 && rid < 65536)
          | _ -> Alcotest.fail "malformed slow-query row")
        slow;
      Alcotest.(check bool) "the COMMIT's rid reached the shard log" true
        (List.exists
           (function
             | [| Value.Int rid; Value.Str _ |] -> rid = commit_rid
             | _ -> false)
           slow);
      Client.close cl;
      Coord.close c;
      Coord_server.drain csrv;
      Array.iter Server.drain servers)

(* --- coordinator restart without crash --------------------------------- *)

let test_recover_is_idempotent () =
  let shards = 2 in
  let txns = script ~shards 2 in
  let cl = fresh_cluster shards in
  phase cl (fun c _ ->
      run_setup c;
      run_script c txns);
  let before = digest_union cl in
  (* a clean restart re-delivers every decision; participants answer
     from their dedupe tables and nothing changes *)
  crash_cluster cl;
  let resolved = phase cl (fun c _ -> Coord.recover c) in
  check Alcotest.int "every started txn resolved" 2 resolved;
  check Alcotest.string "re-delivery changed nothing" before (digest_union cl);
  let resolved = phase cl (fun c _ -> Coord.recover c) in
  check Alcotest.int "second recovery is a no-op too" 2 resolved;
  check Alcotest.string "still unchanged" before (digest_union cl)

(* Routing metadata is re-derived from the DDL in the coordinator's log:
   a restarted coordinator must keep refusing partition-column updates
   (silently broadcasting one would strand rows on the wrong shard) and
   keep knowing each table's partition column. *)
let test_routing_metadata_survives_restart () =
  let shards = 2 in
  let cl = fresh_cluster shards in
  phase cl (fun c _ ->
      run_setup c;
      run_script c (script ~shards 1));
  crash_cluster cl;
  phase cl (fun c _ ->
      ignore (Coord.recover c);
      (try
         ignore (Coord.exec c "UPDATE t SET k = 99 WHERE qty = 1");
         Alcotest.fail "expected partition-column refusal"
       with Coord.Coord_error m ->
         Alcotest.(check bool) "guard still fires after restart" true
           (contains m "partition column"));
      (* the aggregation-refusal hint still names the partition column *)
      (try
         ignore (Coord.exec c "SELECT grp, SUM(qty) FROM t GROUP BY grp");
         Alcotest.fail "expected aggregation refusal"
       with Coord.Coord_error m ->
         Alcotest.(check bool) "hint still names the pk" true
           (contains m "k = <literal>"));
      (* pinned point reads and view fan-out still answer correctly *)
      let k = (keys_owned_by ~shards 0 1).(0) in
      check Alcotest.int "pinned point read" 1
        (List.length
           (rows (Coord.exec c (Printf.sprintf "SELECT qty FROM t WHERE k = %d" k))));
      check Alcotest.int "view fan-out" 2
        (List.length (rows (Coord.exec c "SELECT * FROM v"))))

let () =
  Alcotest.run "coord"
    [
      ( "routing",
        [
          Alcotest.test_case "cluster smoke: routing, views, sys.shards"
            `Quick test_cluster_smoke;
          Alcotest.test_case "cross-shard transactions and aborts" `Quick
            test_txn_semantics;
        ] );
      ( "crash",
        [
          Alcotest.test_case "coordinator crash at every protocol action"
            `Slow test_coordinator_crash_sweep;
          Alcotest.test_case "participant crash at every force point" `Slow
            test_participant_crash_sweep;
          Alcotest.test_case "recovery is idempotent" `Quick
            test_recover_is_idempotent;
          Alcotest.test_case "routing metadata survives a restart" `Quick
            test_routing_metadata_survives_restart;
        ] );
      ( "dedupe",
        [
          Alcotest.test_case "prepare/decide retransmits are deduped" `Quick
            test_retransmit_dedupe;
          Alcotest.test_case "a lost Prepare aborts instead of part-committing"
            `Quick test_prepare_loss_aborts;
          Alcotest.test_case "undelivered decisions re-deliver at next commit"
            `Quick test_decision_redelivery;
        ] );
      ( "observability",
        [
          Alcotest.test_case "sys.gtxns tracks an in-flight 2PC round" `Quick
            test_gtxns_inflight;
          Alcotest.test_case "trace streams are byte-deterministic per seed"
            `Quick test_trace_determinism;
          Alcotest.test_case "catalogs, rollup and rids over the wire" `Quick
            test_catalogs_over_wire;
        ] );
    ]
