module Wal = Ivdb_wal.Wal
module LR = Ivdb_wal.Log_record
module Metrics = Ivdb_util.Metrics
module Rng = Ivdb_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- record codec ---------------------------------------------------------- *)

let rid_gen =
  QCheck.Gen.(
    map2
      (fun p s -> { Ivdb_storage.Heap_file.rpage = p; rslot = s })
      (int_bound 100000) (int_bound 500))

let str_gen = QCheck.Gen.(string_size (int_bound 64))

let diff_gen =
  QCheck.Gen.(
    list_size (int_bound 4)
      (map2 (fun off s -> (off land 0xFFF, s)) (int_bound 0xFFF)
         (string_size (int_range 1 32))))

let redo_gen =
  QCheck.Gen.(
    list_size (int_bound 3) (map2 (fun p d -> (p, d)) (int_bound 100000) diff_gen))

let undo_gen =
  QCheck.Gen.(
    oneof
      [
        return LR.No_undo;
        map2 (fun t r -> LR.Undo_heap_insert { table = t; rid = r }) (int_bound 99) rid_gen;
        map2 (fun t r -> LR.Undo_heap_delete { table = t; rid = r }) (int_bound 99) rid_gen;
        map3
          (fun t r b -> LR.Undo_heap_update { table = t; rid = r; before = b })
          (int_bound 99) rid_gen str_gen;
        map2 (fun i k -> LR.Undo_bt_insert { index = i; key = k }) (int_bound 99) str_gen;
        map3
          (fun i k v -> LR.Undo_bt_delete { index = i; key = k; value = v })
          (int_bound 99) str_gen str_gen;
        map3
          (fun i k b -> LR.Undo_bt_update { index = i; key = k; before = b })
          (int_bound 99) str_gen str_gen;
        map3
          (fun v k d -> LR.Undo_escrow { view = v; key = k; inverse = d })
          (int_bound 99) str_gen str_gen;
      ])

let body_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> LR.Begin { system = s }) bool;
        return LR.Commit;
        return LR.Abort;
        return LR.End;
        map2 (fun redo undo -> LR.Update { redo; undo }) redo_gen undo_gen;
        map2 (fun redo n -> LR.Clr { redo; undo_next = n }) redo_gen (int_bound 1000);
        map3
          (fun active dpt catalog -> LR.Checkpoint { active; dpt; catalog })
          (list_size (int_bound 4) (pair (int_bound 999) (int_bound 999)))
          (list_size (int_bound 4) (pair (int_bound 999) (int_bound 999)))
          str_gen;
        map (fun s -> LR.Ddl s) str_gen;
      ])

let record_gen =
  QCheck.Gen.(
    map3
      (fun lsn txn body -> { LR.lsn; txn; prev = max 0 (lsn - 1); body })
      (int_range 1 100000) (int_bound 1000) body_gen)

let record_arb =
  QCheck.make ~print:(fun r -> Format.asprintf "%a" LR.pp r) record_gen

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"log record encode/decode roundtrip" ~count:500 record_arb
    (fun r -> LR.decode (LR.encode r) = r)

let prop_byte_size_exact =
  QCheck.Test.make ~name:"byte_size equals encoded length" ~count:200 record_arb
    (fun r -> LR.byte_size r = String.length (LR.encode r))

let test_decode_garbage () =
  Alcotest.check_raises "garbage" (Invalid_argument "Log_record.decode: malformed record")
    (fun () -> ignore (LR.decode "\000\000\000\001junk"));
  Alcotest.check_raises "trailing bytes"
    (Invalid_argument "Log_record.decode: malformed record") (fun () ->
      let ok = LR.encode { LR.lsn = 1; txn = 1; prev = 0; body = LR.Commit } in
      ignore (LR.decode (ok ^ "x")))

(* --- wal mechanics ----------------------------------------------------------- *)

let make () = Wal.create (Metrics.create ())

let test_append_get () =
  let w = make () in
  let l1 = Wal.append w ~txn:1 ~prev:0 (LR.Begin { system = false }) in
  let l2 = Wal.append w ~txn:1 ~prev:l1 LR.Commit in
  check Alcotest.int "dense lsns" (l1 + 1) l2;
  check Alcotest.int "last" l2 (Wal.last_lsn w);
  Alcotest.(check bool) "get" true ((Wal.get w l1).LR.body = LR.Begin { system = false });
  Alcotest.check_raises "lsn 0" (Invalid_argument "Wal.get: LSN out of range")
    (fun () -> ignore (Wal.get w 0))

let test_force_semantics () =
  let m = Metrics.create () in
  let w = Wal.create m in
  let l1 = Wal.append w ~txn:1 ~prev:0 LR.Commit in
  check Alcotest.int "nothing flushed" 0 (Wal.flushed_lsn w);
  Wal.force w l1;
  check Alcotest.int "flushed" l1 (Wal.flushed_lsn w);
  Wal.force w l1;
  (* group commit: second force is a no-op *)
  check Alcotest.int "one force" 1 (Metrics.get m "log.force");
  (* forcing beyond the end clamps *)
  Wal.force w 999;
  check Alcotest.int "clamped" l1 (Wal.flushed_lsn w)

let test_crash_keeps_stable_prefix () =
  let w = make () in
  let l1 = Wal.append w ~txn:1 ~prev:0 LR.Commit in
  Wal.force w l1;
  let _l2 = Wal.append w ~txn:2 ~prev:0 LR.Abort in
  let w' = Wal.crash w (Metrics.create ()) in
  check Alcotest.int "tail lost" l1 (Wal.last_lsn w');
  check Alcotest.int "flushed preserved" l1 (Wal.flushed_lsn w')

let test_checkpoint_tracking () =
  let w = make () in
  check Alcotest.int "no ckpt" 0 (Wal.last_checkpoint_lsn w);
  let c1 =
    Wal.append w ~txn:0 ~prev:0 (LR.Checkpoint { active = []; dpt = []; catalog = "x" })
  in
  (* unforced checkpoints are not visible *)
  check Alcotest.int "unforced invisible" 0 (Wal.last_checkpoint_lsn w);
  Wal.force w c1;
  check Alcotest.int "visible after force" c1 (Wal.last_checkpoint_lsn w)

let test_truncation () =
  let w = make () in
  let lsns =
    List.init 10 (fun k -> Wal.append w ~txn:(k + 1) ~prev:0 LR.Commit)
  in
  Wal.force w (Wal.last_lsn w);
  Wal.truncate_before w 5;
  check Alcotest.int "first retained" 5 (Wal.first_lsn w);
  check Alcotest.int "count" 6 (Wal.record_count w);
  Alcotest.check_raises "truncated lsn" (Invalid_argument "Wal.get: LSN out of range")
    (fun () -> ignore (Wal.get w 4));
  Alcotest.(check bool) "boundary readable" true ((Wal.get w 5).LR.txn = 5);
  (* appends continue with globally monotonic LSNs *)
  let next = Wal.append w ~txn:99 ~prev:0 LR.Abort in
  check Alcotest.int "monotonic" (List.nth lsns 9 + 1) next;
  (* crash keeps the truncation base *)
  Wal.force w next;
  let w' = Wal.crash w (Metrics.create ()) in
  check Alcotest.int "base survives crash" 5 (Wal.first_lsn w');
  check Alcotest.int "tail survives" next (Wal.last_lsn w');
  (* recovery-style scan sees only retained records *)
  let seen = ref 0 in
  Wal.iter_stable w' (fun _ -> incr seen);
  check Alcotest.int "scan count" 7 !seen

let test_truncation_clamped_to_flushed () =
  let w = make () in
  let l1 = Wal.append w ~txn:1 ~prev:0 LR.Commit in
  Wal.force w l1;
  let l2 = Wal.append w ~txn:2 ~prev:0 LR.Commit in
  (* cannot truncate past the stable prefix *)
  Wal.truncate_before w (l2 + 10);
  check Alcotest.int "kept the unflushed tail" l2 (Wal.last_lsn w);
  check Alcotest.int "first = flushed + 1" (l1 + 1) (Wal.first_lsn w)

let test_stable_bytes_accounting () =
  let w = make () in
  let l1 = Wal.append w ~txn:1 ~prev:0 LR.Commit in
  Wal.force w l1;
  check Alcotest.int "exact byte accounting"
    (LR.byte_size (Wal.get w l1))
    (Wal.stable_byte_size w)

(* --- torn tail --------------------------------------------------------------- *)

(* A forced log with records of several shapes and sizes, so frame
   boundaries fall at irregular offsets. Record 4 is a checkpoint. *)
let torn_fixture () =
  let w = make () in
  let add txn body = ignore (Wal.append w ~txn ~prev:0 body) in
  add 1 (LR.Begin { system = false });
  add 1 (LR.Update { redo = [ (3, [ (100, "abcdef") ]) ]; undo = LR.No_undo });
  add 1 LR.Commit;
  add 0 (LR.Checkpoint { active = []; dpt = [ (3, 2) ]; catalog = "cat" });
  add 0 (LR.Ddl "create table t");
  Wal.force w (Wal.last_lsn w);
  w

let ckpt_lsn = 4

let test_torn_tail_sweep () =
  let w = torn_fixture () in
  let stream = Wal.serialize_stable w in
  let n = Wal.last_lsn w in
  (* bounds.(l) = byte offset at which record l's frame ends *)
  let bounds = Array.make (n + 1) 0 in
  for l = 1 to n do
    bounds.(l) <- bounds.(l - 1) + 8 + LR.byte_size (Wal.get w l)
  done;
  check Alcotest.int "stream length = sum of frames" bounds.(n)
    (String.length stream);
  for cut = 0 to String.length stream do
    Wal.set_torn_tail w cut;
    let m = Metrics.create () in
    let w' = Wal.crash w m in
    (* the longest prefix of records whose frames fit entirely in [cut]
       bytes survives; a partial frame and everything after it are gone *)
    let expected = ref 0 in
    for l = 1 to n do
      if bounds.(l) <= cut then expected := l
    done;
    check Alcotest.int (Printf.sprintf "retained prefix (cut %d)" cut)
      !expected (Wal.last_lsn w');
    check Alcotest.int (Printf.sprintf "flushed (cut %d)" cut) !expected
      (Wal.flushed_lsn w');
    for l = 1 to !expected do
      Alcotest.(check bool)
        (Printf.sprintf "record %d intact (cut %d)" l cut)
        true
        (Wal.get w' l = Wal.get w l)
    done;
    (* a torn checkpoint record must not be half-believed *)
    check Alcotest.int (Printf.sprintf "ckpt visibility (cut %d)" cut)
      (if !expected >= ckpt_lsn then ckpt_lsn else 0)
      (Wal.last_checkpoint_lsn w');
    check Alcotest.int (Printf.sprintf "drop count (cut %d)" cut)
      (n - !expected)
      (Metrics.get m "wal.torn_tail_dropped")
  done

let test_crash_roundtrips_codec () =
  (* even without a tear, [crash] rebuilds the log from the framed byte
     stream — every retained record has survived encode/decode *)
  let w = torn_fixture () in
  let w' = Wal.crash w (Metrics.create ()) in
  check Alcotest.int "all records retained" (Wal.last_lsn w) (Wal.last_lsn w');
  for l = 1 to Wal.last_lsn w do
    Alcotest.(check bool)
      (Printf.sprintf "record %d roundtrips" l)
      true
      (Wal.get w' l = Wal.get w l)
  done

let prop_torn_tail_prefix =
  QCheck.Test.make ~name:"torn tail keeps exactly the complete-frame prefix"
    ~count:100
    QCheck.(
      make
        Gen.(
          pair (list_size (int_range 1 8) body_gen) (int_bound 1000)))
    (fun (bodies, cut_raw) ->
      let w = make () in
      List.iteri (fun i b -> ignore (Wal.append w ~txn:(i + 1) ~prev:0 b)) bodies;
      Wal.force w (Wal.last_lsn w);
      let stream = Wal.serialize_stable w in
      let cut = cut_raw mod (String.length stream + 1) in
      Wal.set_torn_tail w cut;
      let w' = Wal.crash w (Metrics.create ()) in
      let ok = ref true in
      let off = ref 0 in
      let expected = ref 0 in
      for l = 1 to Wal.last_lsn w do
        off := !off + 8 + LR.byte_size (Wal.get w l);
        if !off <= cut then expected := l
      done;
      ok := Wal.last_lsn w' = !expected;
      for l = 1 to min !expected (Wal.last_lsn w') do
        if Wal.get w' l <> Wal.get w l then ok := false
      done;
      !ok)

let () =
  Alcotest.run "wal"
    [
      ( "codec",
        [
          qtest prop_codec_roundtrip;
          qtest prop_byte_size_exact;
          Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
        ] );
      ( "wal",
        [
          Alcotest.test_case "append/get" `Quick test_append_get;
          Alcotest.test_case "force semantics" `Quick test_force_semantics;
          Alcotest.test_case "crash keeps stable prefix" `Quick
            test_crash_keeps_stable_prefix;
          Alcotest.test_case "checkpoint tracking" `Quick test_checkpoint_tracking;
          Alcotest.test_case "stable byte accounting" `Quick
            test_stable_bytes_accounting;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "truncation clamped" `Quick
            test_truncation_clamped_to_flushed;
        ] );
      ( "torn tail",
        [
          Alcotest.test_case "byte-granularity tear sweep" `Quick
            test_torn_tail_sweep;
          Alcotest.test_case "crash roundtrips codec" `Quick
            test_crash_roundtrips_codec;
          qtest prop_torn_tail_prefix;
        ] );
    ]
